#include "op2ca/model/perf_model.hpp"

#include <algorithm>

namespace op2ca::model {

double t_op2_loop(const Machine& mach, const LoopTerms& t) {
  const double L = mach.effective_latency();
  // Multi-rail striping folds into Eq (1) as an effective bandwidth on
  // the serialisation term: a message >= the stripe threshold moves over
  // net_rails links concurrently. The per-dat level-1 messages are
  // usually latency-bound and stay below it.
  const double B =
      mach.effective_bandwidth(static_cast<std::size_t>(t.m1));
  const double su =
      mach.compute_speedup() * mach.vector_width / mach.locality_factor;
  const double compute_core =
      t.g * static_cast<double>(t.core_iters) / su;
  const double comm = static_cast<double>(t.msgs_per_neighbor) * t.p *
                      (L + static_cast<double>(t.m1) / B);
  return std::max(compute_core, comm) +
         t.g * static_cast<double>(t.halo_iters) / su;
}

double t_op2_chain(const Machine& mach, const std::vector<LoopTerms>& ts) {
  double total = 0.0;
  for (const LoopTerms& t : ts) total += t_op2_loop(mach, t);
  return total;
}

double t_ca_chain(const Machine& mach, const ChainTerms& t) {
  const double L = mach.effective_latency();
  // The grouped message m_r is the natural striping beneficiary: one
  // large message per neighbour clears the threshold where the baseline's
  // many small per-dat messages do not — Eq (3)'s m_r/B term shrinks by
  // the rail count while Eq (1) keeps flat bandwidth.
  const double B =
      mach.effective_bandwidth(static_cast<std::size_t>(t.m_r));
  const double su =
      mach.compute_speedup() * mach.vector_width / mach.locality_factor;
  double compute_core = 0.0, compute_halo = 0.0;
  for (const LoopTerms& lt : t.loops) {
    compute_core += lt.g * static_cast<double>(lt.core_iters) / su;
    compute_halo += lt.g * static_cast<double>(lt.halo_iters) / su;
  }
  // c: the EXTRA staging cost of the grouped message relative to the
  // baseline. Both executors pack their sends; only the receiver-side
  // unpack (copying each dat's rows out of the combined buffer) is new,
  // and it runs at chunked-memcpy bandwidth — the paper's observation
  // that the unpacking cost "becomes negligible due to the chunk memcopy
  // operations" relative to multiple message exchanges.
  const double c = mach.net.pack_time(t.m_r);
  const double comm = t.p * (L + static_cast<double>(t.m_r) / B + c);
  return std::max(compute_core, comm) + compute_halo;
}

double t_ca_chain_tiled(const Machine& mach, const ChainTerms& t, int tile) {
  const int k = std::max(1, tile);
  // The fused epoch's grouped message carries every skipped exchange's
  // layers: ~k times the per-invocation m_r, priced at that size's
  // effective bandwidth (striping engages sooner on the bigger message).
  const std::int64_t m_tile = t.m_r * static_cast<std::int64_t>(k);
  const double L = mach.effective_latency();
  const double B =
      mach.effective_bandwidth(static_cast<std::size_t>(m_tile));
  const double su =
      mach.compute_speedup() * mach.vector_width / mach.locality_factor;
  double compute_core = 0.0, compute_halo = 0.0;
  for (const LoopTerms& lt : t.loops) {
    compute_core += lt.g * static_cast<double>(lt.core_iters) / su;
    compute_halo += lt.g * static_cast<double>(lt.halo_iters) / su;
  }
  const double c = mach.net.pack_time(m_tile);
  const double comm = t.p * (L + static_cast<double>(m_tile) / B + c);
  // One exchange per k invocations; cores of all k invocations overlap
  // it. The j-th fused invocation's halo region reaches ~j layer-bands
  // deep (slice shrink grows along the unrolled window), so the tile's
  // total halo compute is sum_{j=1..k} j * halo = k(k+1)/2 * halo —
  // (k+1)/2 per invocation. At k = 1 every term collapses to Eq (3).
  const double per_tile =
      std::max(static_cast<double>(k) * compute_core, comm) +
      static_cast<double>(k) * compute_halo *
          (static_cast<double>(k) + 1.0) / 2.0;
  return per_tile / static_cast<double>(k);
}

double gain_percent(double t_op2, double t_ca) {
  if (t_op2 <= 0.0) return 0.0;
  return 100.0 * (t_op2 - t_ca) / t_op2;
}

}  // namespace op2ca::model
