// The analytic performance model of Section 3.2, Eqs (1)-(3):
//
//   T_op2,l = MAX[ g_l S_l^c , 2 d_l p_l (L + m_l^1/B) ] + g_l S_l^1   (1)
//   T_op2,L = sum_l T_op2,l                                            (2)
//   T_ca,L  = MAX[ sum_l g_l S_l^c , p (L + m^r/B + c) ] + sum_l g_l S_l^h
//                                                                      (3)
//
// with m^r the grouped message size (Eq 4, assembled by the component
// extractor), L/B the machine latency/bandwidth (Lambda on the GPU path)
// and c the grouped pack+unpack cost.
#pragma once

#include <cstdint>
#include <vector>

#include "op2ca/model/machine.hpp"

namespace op2ca::model {

/// Per-loop quantities entering Eq (1); per-rank critical-path maxima.
struct LoopTerms {
  double g = 0.0;                ///< seconds per iteration (target core).
  std::int64_t core_iters = 0;   ///< S_l^c.
  std::int64_t halo_iters = 0;   ///< S_l^1 (OP2) or S_l^h (CA).
  int d = 0;                     ///< dats exchanged (OP2 path).
  int p = 0;                     ///< neighbours (OP2 path).
  std::int64_t m1 = 0;           ///< max single message bytes (OP2 path).
  /// Messages per neighbour per exchange round. The paper's Eq (1) uses
  /// 2*d (separate eeh and enh messages per dat); on meshes where one
  /// class is empty (e.g. node sets with no exec halo) only the
  /// non-empty classes send, so this is d * (non-empty classes).
  int msgs_per_neighbor = 0;
};

/// Eq (1): one OP2 loop.
double t_op2_loop(const Machine& mach, const LoopTerms& t);

/// Eq (2): sum over the chain's loops.
double t_op2_chain(const Machine& mach, const std::vector<LoopTerms>& ts);

/// Chain-level quantities entering Eq (3).
struct ChainTerms {
  std::vector<LoopTerms> loops;  ///< g, core_iters, halo_iters used.
  int p = 0;                     ///< neighbours for the grouped message.
  std::int64_t m_r = 0;          ///< grouped message bytes (Eq 4).
};

/// Eq (3): the chain executed with CA.
double t_ca_chain(const Machine& mach, const ChainTerms& t);

/// Temporal tiling extension of Eq (3): `tile` consecutive invocations of
/// the chain fused into one CA epoch, reported as the modelled time of
/// ONE invocation (so it compares directly against t_ca_chain). The fused
/// epoch pays the p*(L + m/B + c) exchange once for `tile` invocations —
/// k-fold latency amortisation — while the grouped message grows to
/// tile * m_r (each skipped exchange's layers ride along) and the
/// redundant halo compute of the j-th fused invocation reaches ~j times
/// deeper, giving the (tile+1)/2 halo-growth multiplier. Degenerates to
/// t_ca_chain exactly at tile = 1; the crossover where redundant compute
/// overtakes message savings is what the fig drivers sweep with --tile.
double t_ca_chain_tiled(const Machine& mach, const ChainTerms& t, int tile);

/// Convenience: percentage gain of CA over OP2 (positive = CA faster).
double gain_percent(double t_op2, double t_ca);

}  // namespace op2ca::model
