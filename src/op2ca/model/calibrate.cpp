#include "op2ca/model/calibrate.hpp"

namespace op2ca::model {

std::map<std::string, double> calibrate_loop_costs(
    mesh::MeshDef mesh, const std::function<void(core::Runtime&)>& spmd) {
  core::WorldConfig cfg;
  cfg.nranks = 1;
  cfg.partitioner = partition::Kind::Block;
  cfg.halo_depth = 1;
  core::World world(std::move(mesh), cfg);
  world.run(spmd);

  std::map<std::string, double> g;
  for (const auto& [name, m] : world.loop_metrics()) {
    const std::int64_t iters = m.core_iters + m.halo_iters;
    if (iters > 0) g[name] = m.wall_seconds / static_cast<double>(iters);
  }
  return g;
}

double default_host_g() { return 2.0e-8; }

}  // namespace op2ca::model
