// Machine parameterisations for the analytic model (Table 1 of the
// paper): an ARCHER2-like CPU cluster (HPE Cray EX, AMD EPYC 7742,
// Slingshot) and a Cirrus-like V100 GPU cluster (4 GPUs/node, FDR
// InfiniBand, staged host<->device transfers).
//
// Absolute times are not the reproduction target — shapes are — but the
// parameters are chosen from the published system specs so the
// computation/communication balance is realistic.
#pragma once

#include <cstddef>
#include <string>

#include "op2ca/comm/cost_model.hpp"

namespace op2ca::model {

/// Explicit PCIe/launch tier for the GPU path. When `enabled`, the
/// staged host<->device copies that bracket every halo exchange stop
/// being a hand-tuned `extra_latency_s` lump and are instead *derived*:
/// each exchange pays one D2H (export rows) and one H2D (import rows)
/// round-trip plus two kernel launches (pack + unpack). Pipelining
/// overlaps a fraction `overlap` of the PCIe term with compute, so the
/// exposed share enters the effective latency Lambda (Section 3.3) as
///
///   Lambda = L + 2*launch + 2*(1 - overlap)*pcie_latency
///
/// and the PCIe bus composes in series with the NIC on the bandwidth
/// term (the bytes cross both), attenuated by the same overlap factor.
struct DeviceTier {
  bool enabled = false;
  double pcie_latency_s = 8.0e-6;    ///< per-transfer DMA setup cost.
  double pcie_bandwidth_Bps = 12e9;  ///< PCIe gen3 x16 effective.
  double kernel_launch_s = 5.0e-6;   ///< pack/unpack kernel launch.
  /// Fraction of the PCIe transfer hidden behind compute (0 = fully
  /// staged, matches the legacy extra_latency_s regime; ~0.8 = the
  /// 3-stage pipelined executor).
  double overlap = 0.0;
  /// Exposed extra latency per exchange under this tier.
  double lambda_extra_s() const {
    return 2.0 * kernel_launch_s +
           2.0 * (1.0 - overlap) * pcie_latency_s;
  }
};

struct Machine {
  std::string name;
  sim::CostModel net;  ///< L (latency) and B (bandwidth) of Eqs (1)-(3).
  /// Multiplier applied to host-calibrated per-iteration kernel costs to
  /// approximate one target core / one target GPU rank.
  double compute_scale = 1.0;
  int ranks_per_node = 1;
  bool is_gpu = false;
  /// Shared-memory workers per rank (WorldConfig::threads_per_rank).
  /// Compute terms scale by compute_speedup(); communication terms do
  /// not — threads share one NIC, which is exactly why the CA gain
  /// grows with thread count (compute shrinks, latency does not).
  int threads_per_rank = 1;
  /// Parallel efficiency of the intra-rank sweep: colour-sweep barriers
  /// and the serial tail keep the speedup below linear.
  double thread_efficiency = 0.95;
  /// Dependency-driven execution (WorldConfig::taskgraph): per-colour
  /// barriers are replaced by a task DAG, so workers stall only on true
  /// block dependencies rather than on the slowest block of every
  /// colour. The residual loss is steal contention and the DAG's
  /// critical path.
  bool taskgraph = false;
  double taskgraph_efficiency = 0.98;
  /// Effective compute speedup of a threads_per_rank-wide rank. The
  /// efficiency term reflects how the intra-rank sweep synchronises:
  /// colour barriers (default) or the task graph (taskgraph = true).
  double compute_speedup() const {
    const double eff = taskgraph ? taskgraph_efficiency : thread_efficiency;
    return 1.0 + (threads_per_rank - 1) * eff;
  }
  /// Ordering-quality multiplier on the per-iteration cost g. Kernel
  /// calibrations are taken in partition order; the locality layer
  /// (WorldConfig::reorder) lowers the effective cost of memory-bound
  /// kernels, entering the model as a factor < 1 — typically the
  /// measured A/B ratio from BENCH_locality.json. 1 = partition order.
  /// Communication terms are unaffected: reordering moves no bytes.
  double locality_factor = 1.0;
  /// SIMD speedup of the per-iteration cost under a vector-friendly dat
  /// layout (WorldConfig::layout = SoA / AoSoA): calibrations are taken
  /// on AoS storage, so a layout A/B ratio from BENCH_simd.json enters
  /// the compute terms as a factor > 1. 1 = scalar AoS baseline.
  /// Communication terms are unaffected: the wire carries the same
  /// bytes in a different order.
  double vector_width = 1.0;
  /// GPU path: the staged PCIe copies and kernel-launch overheads enter
  /// the model as a larger effective latency Lambda (Section 3.3).
  /// With `device.enabled` the extra term is derived from the PCIe tier
  /// (and extra_latency_s is ignored); otherwise the legacy lump is used.
  double effective_latency() const {
    return net.latency_s +
           (device.enabled ? device.lambda_extra_s() : extra_latency_s);
  }
  double extra_latency_s = 0.0;
  DeviceTier device;
  /// Multi-rail striping threshold (mirrors TransportConfig): messages
  /// at or above this stripe across net.net_rails parallel links, which
  /// enters Eq (1)/(3) as an effective bandwidth B * rails on the m/B
  /// serialisation term. Latency-bound messages below it are unaffected
  /// — striping buys bandwidth, not latency. With net_rails == 1 (the
  /// default CostModel) every prediction is bitwise-identical to the
  /// flat model.
  std::size_t stripe_min_bytes = std::size_t{64} * 1024;
  /// Effective wire bandwidth for one `bytes`-sized message: B times the
  /// rail count once the message is large enough to stripe.
  double effective_bandwidth(std::size_t bytes) const {
    const bool striped =
        net.net_rails > 1 && bytes >= stripe_min_bytes;
    const double wire = net.bandwidth_Bps * (striped ? net.net_rails : 1);
    if (!device.enabled) return wire;
    // Halo bytes cross PCIe twice (D2H at the sender, H2D at the
    // receiver) in series with the wire; overlap hides that share.
    const double pcie_exposed =
        2.0 * (1.0 - device.overlap) / device.pcie_bandwidth_Bps;
    return 1.0 / (1.0 / wire + pcie_exposed);
  }
};

/// HPE Cray EX: 2 x 64-core EPYC 7742/node, Slingshot 2x100 Gb/s.
Machine archer2();
/// SGI/HPE 8600: 4 x V100/node, FDR InfiniBand 54.5 Gb/s.
Machine cirrus_gpu();

/// Look-up by name ("archer2" | "cirrus"); raises on unknown.
Machine machine_by_name(const std::string& name);

}  // namespace op2ca::model
