// Machine parameterisations for the analytic model (Table 1 of the
// paper): an ARCHER2-like CPU cluster (HPE Cray EX, AMD EPYC 7742,
// Slingshot) and a Cirrus-like V100 GPU cluster (4 GPUs/node, FDR
// InfiniBand, staged host<->device transfers).
//
// Absolute times are not the reproduction target — shapes are — but the
// parameters are chosen from the published system specs so the
// computation/communication balance is realistic.
#pragma once

#include <cstddef>
#include <string>

#include "op2ca/comm/cost_model.hpp"

namespace op2ca::model {

struct Machine {
  std::string name;
  sim::CostModel net;  ///< L (latency) and B (bandwidth) of Eqs (1)-(3).
  /// Multiplier applied to host-calibrated per-iteration kernel costs to
  /// approximate one target core / one target GPU rank.
  double compute_scale = 1.0;
  int ranks_per_node = 1;
  bool is_gpu = false;
  /// Shared-memory workers per rank (WorldConfig::threads_per_rank).
  /// Compute terms scale by compute_speedup(); communication terms do
  /// not — threads share one NIC, which is exactly why the CA gain
  /// grows with thread count (compute shrinks, latency does not).
  int threads_per_rank = 1;
  /// Parallel efficiency of the intra-rank sweep: colour-sweep barriers
  /// and the serial tail keep the speedup below linear.
  double thread_efficiency = 0.95;
  /// Dependency-driven execution (WorldConfig::taskgraph): per-colour
  /// barriers are replaced by a task DAG, so workers stall only on true
  /// block dependencies rather than on the slowest block of every
  /// colour. The residual loss is steal contention and the DAG's
  /// critical path.
  bool taskgraph = false;
  double taskgraph_efficiency = 0.98;
  /// Effective compute speedup of a threads_per_rank-wide rank. The
  /// efficiency term reflects how the intra-rank sweep synchronises:
  /// colour barriers (default) or the task graph (taskgraph = true).
  double compute_speedup() const {
    const double eff = taskgraph ? taskgraph_efficiency : thread_efficiency;
    return 1.0 + (threads_per_rank - 1) * eff;
  }
  /// Ordering-quality multiplier on the per-iteration cost g. Kernel
  /// calibrations are taken in partition order; the locality layer
  /// (WorldConfig::reorder) lowers the effective cost of memory-bound
  /// kernels, entering the model as a factor < 1 — typically the
  /// measured A/B ratio from BENCH_locality.json. 1 = partition order.
  /// Communication terms are unaffected: reordering moves no bytes.
  double locality_factor = 1.0;
  /// SIMD speedup of the per-iteration cost under a vector-friendly dat
  /// layout (WorldConfig::layout = SoA / AoSoA): calibrations are taken
  /// on AoS storage, so a layout A/B ratio from BENCH_simd.json enters
  /// the compute terms as a factor > 1. 1 = scalar AoS baseline.
  /// Communication terms are unaffected: the wire carries the same
  /// bytes in a different order.
  double vector_width = 1.0;
  /// GPU path: the staged PCIe copies and kernel-launch overheads enter
  /// the model as a larger effective latency Lambda (Section 3.3).
  double effective_latency() const {
    return net.latency_s + extra_latency_s;
  }
  double extra_latency_s = 0.0;
  /// Multi-rail striping threshold (mirrors TransportConfig): messages
  /// at or above this stripe across net.net_rails parallel links, which
  /// enters Eq (1)/(3) as an effective bandwidth B * rails on the m/B
  /// serialisation term. Latency-bound messages below it are unaffected
  /// — striping buys bandwidth, not latency. With net_rails == 1 (the
  /// default CostModel) every prediction is bitwise-identical to the
  /// flat model.
  std::size_t stripe_min_bytes = std::size_t{64} * 1024;
  /// Effective wire bandwidth for one `bytes`-sized message: B times the
  /// rail count once the message is large enough to stripe.
  double effective_bandwidth(std::size_t bytes) const {
    const bool striped =
        net.net_rails > 1 && bytes >= stripe_min_bytes;
    return net.bandwidth_Bps * (striped ? net.net_rails : 1);
  }
};

/// HPE Cray EX: 2 x 64-core EPYC 7742/node, Slingshot 2x100 Gb/s.
Machine archer2();
/// SGI/HPE 8600: 4 x V100/node, FDR InfiniBand 54.5 Gb/s.
Machine cirrus_gpu();

/// Look-up by name ("archer2" | "cirrus"); raises on unknown.
Machine machine_by_name(const std::string& name);

}  // namespace op2ca::model
