// Model-component extraction: computes, from a halo plan and a chain
// analysis, exactly the quantities the paper tabulates (Tables 2 and 5)
// and the inputs of Eqs (1)-(3):
//
//   OP2:  sum_l 2 d_l p_l m_l^1  |  sum_l S_l^c  |  sum_l S_l^1
//   CA:   p m^r                  |  sum_l S_l^c  |  sum_l S_l^h
//
// All values are per-rank critical-path maxima, like the paper's. No
// execution is needed — a sizes-only halo plan suffices — so components
// can be extracted at paper scale (thousands of ranks).
#pragma once

#include <map>
#include <string>
#include <set>

#include "op2ca/core/chain.hpp"
#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/model/perf_model.hpp"

namespace op2ca::model {

struct ChainComponents {
  // Table 2 / Table 5 columns (per-rank maxima).
  std::int64_t op2_comm_bytes = 0;  ///< sum_l 2 d_l p_l m_l^1.
  std::int64_t op2_core = 0;        ///< sum_l S_l^c.
  std::int64_t op2_halo = 0;        ///< sum_l S_l^1.
  std::int64_t ca_comm_bytes = 0;   ///< p * m^r.
  std::int64_t ca_core = 0;         ///< sum_l S_l^c (shrunken cores).
  std::int64_t ca_halo = 0;         ///< sum_l S_l^h.
  /// Per-rank total iterations (core+halo maximized as one quantity, so
  /// the computation-increase comparison is rank-consistent).
  std::int64_t op2_total_iters = 0;
  std::int64_t ca_total_iters = 0;

  /// Derived Table-5 style percentages.
  double comm_reduction_pct() const;
  double comp_increase_pct() const;

  /// Eq (1)/(3) inputs with g left at 0 (caller fills per-loop costs).
  std::vector<LoopTerms> op2_terms;
  ChainTerms ca_terms;
};

/// Extracts components for `spec` over `plan`. The baseline dirty-bit
/// sequence is emulated: stale dats read with halo reach trigger a
/// level-1 exchange, every written dat becomes stale again — so the OP2
/// column re-exchanges data the CA execution regenerates locally.
///
/// `stale_at_entry` lists the dats whose halos are stale when the chain
/// starts (typically: dats written inside the chain — they recur stale
/// on every outer iteration — plus dats written by loops outside the
/// chain, like an RK update). Pass nullptr to assume every sync dat
/// stale (worst case). The CA grouped message uses the same filter, so
/// both columns describe the same steady state the executors reach.
ChainComponents extract_components(
    const mesh::MeshDef& mesh, const halo::HaloPlan& plan,
    const core::ChainSpec& spec, const core::ChainAnalysis& analysis,
    const std::set<mesh::dat_id>* stale_at_entry = nullptr);

/// Steady-state stale set: dats written anywhere in the chain plus the
/// caller's extra outer-loop-written dats.
std::set<mesh::dat_id> steady_state_stale(
    const core::ChainSpec& spec,
    const std::set<mesh::dat_id>& outer_written);

/// Fills per-loop g (seconds/iteration on the target machine) into the
/// extracted terms: host-calibrated costs scaled by machine.compute_scale.
void apply_kernel_costs(const core::ChainSpec& spec,
                        const std::map<std::string, double>& host_g,
                        double compute_scale, ChainComponents* comps);

}  // namespace op2ca::model
