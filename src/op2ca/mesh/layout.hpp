// Dat data layouts for the SIMD data plane.
//
// Every rank-local dat array can be stored one of three ways:
//
//   AoS       element-major rows (the legacy layout): component c of
//             element i lives at  i*dim + c.
//   SoA       component-major planes: c*padded + i. A fixed component is
//             unit-stride across elements, so range bodies and the halo
//             pack become contiguous per-component streams, and kernels
//             touching a subset of components stop dragging whole rows
//             through the cache.
//   AoSoA<B>  blocks of B elements, component-major within the block:
//             (i/B)*B*dim + c*B + (i%B). SIMD-friendly like SoA but each
//             block stays within a few cache lines, which keeps gather-
//             heavy indirect loops closer to AoS locality.
//
// All three unify under one addressing scheme — AoS is AoSoA<1> and SoA
// is AoSoA<padded> — so the hot paths carry a single descriptor:
//
//   elem_offset(i) = (i >> bshift) * brow + (i & bmask)
//   offset(i, c)   = elem_offset(i) + c * cstride
//
// with block sizes constrained to powers of two (the shift/mask form
// keeps per-element addressing division-free). The descriptor pads the
// element count so every component plane / block starts cache-aligned;
// padding slots are zero-filled and never addressed by a valid index.
//
// The layout is an in-rank storage detail only: the global MeshDef
// arrays, World::fetch_dat / reset_dat, VTK output and the message wire
// headers all keep the classic AoS view, with transposes at the
// rank<->global boundary (see to_layout / from_layout).
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "op2ca/util/types.hpp"

namespace op2ca::mesh {

enum class LayoutKind { AoS, SoA, AoSoA };

const char* layout_name(LayoutKind k);
/// Parses "aos" | "soa" | "aosoa"; raises on anything else.
LayoutKind layout_by_name(const std::string& name);

/// WorldConfig::layout: the default dat layout plus per-set and per-dat
/// overrides (per-dat wins over per-set wins over the default). The
/// default-constructed config is pure AoS — bitwise-identical storage to
/// the pre-layout runtime.
struct LayoutConfig {
  LayoutKind kind = LayoutKind::AoS;
  /// Elements per AoSoA block; must be a power of two. 8 doubles = one
  /// cache line per dim-1 component row.
  lidx_t aosoa_block = 8;
  std::map<std::string, LayoutKind> per_set;
  std::map<std::string, LayoutKind> per_dat;

  /// True when any dat can end up non-AoS.
  bool enabled() const;
  /// Effective kind for a dat named `dat` living on set `set`.
  LayoutKind resolve(const std::string& set, const std::string& dat) const;
};

/// Per-dat storage descriptor. Built once per (rank, dat) and carried by
/// RankDat, ResolvedArg and DatSyncSpec; all addressing on the hot paths
/// goes through the shift/mask fields below.
struct DatLayout {
  LayoutKind kind = LayoutKind::AoS;
  int dim = 1;
  lidx_t elems = 0;    ///< logical element count (layout total).
  lidx_t block = 1;    ///< elements per block (padded count for SoA).
  lidx_t padded = 0;   ///< allocated element slots (>= elems).
  lidx_t cstride = 1;  ///< doubles between components of one element.
  int bshift = 0;      ///< log2(block); SoA uses a degenerate 30.
  lidx_t bmask = 0;    ///< lane mask within a block.
  std::size_t brow = 1;  ///< doubles per block (block * dim).

  /// Builds the descriptor. `aosoa_block` is only read for AoSoA and
  /// must be a power of two.
  static DatLayout make(LayoutKind kind, int dim, lidx_t elems,
                        lidx_t aosoa_block);

  bool is_aos() const { return kind == LayoutKind::AoS; }

  /// First-component offset of element i (doubles).
  std::size_t elem_offset(lidx_t i) const {
    return static_cast<std::size_t>(i >> bshift) * brow +
           static_cast<std::size_t>(i & bmask);
  }
  /// Offset of component c of element i (doubles).
  std::size_t offset(lidx_t i, int c) const {
    return elem_offset(i) +
           static_cast<std::size_t>(c) * static_cast<std::size_t>(cstride);
  }
  /// Doubles to allocate (padding included).
  std::size_t alloc_doubles() const {
    return static_cast<std::size_t>(padded) * static_cast<std::size_t>(dim);
  }
};

/// Transposes an AoS row array (elems * dim doubles) into `out`
/// (lay.alloc_doubles() long); padding slots are zero-filled.
void to_layout(const double* aos_rows, const DatLayout& lay, double* out);

/// Inverse of to_layout: recovers the AoS row view.
void from_layout(const double* data, const DatLayout& lay, double* aos_rows);

}  // namespace op2ca::mesh
