#include "op2ca/mesh/layout.hpp"

#include <cstring>
#include "op2ca/util/error.hpp"

#include "op2ca/util/aligned.hpp"

namespace op2ca::mesh {

namespace {

// Doubles per cache line; element-count padding granularity.
constexpr lidx_t kLineDoubles =
    static_cast<lidx_t>(util::kCacheLine / sizeof(double));

lidx_t round_up_line(lidx_t n) {
  return (n + kLineDoubles - 1) & ~(kLineDoubles - 1);
}

bool is_pow2(lidx_t n) { return n > 0 && (n & (n - 1)) == 0; }

int log2_pow2(lidx_t n) {
  int s = 0;
  while ((lidx_t{1} << s) < n) ++s;
  return s;
}

}  // namespace

const char* layout_name(LayoutKind k) {
  switch (k) {
    case LayoutKind::AoS:
      return "aos";
    case LayoutKind::SoA:
      return "soa";
    case LayoutKind::AoSoA:
      return "aosoa";
  }
  return "?";
}

LayoutKind layout_by_name(const std::string& name) {
  if (name == "aos") return LayoutKind::AoS;
  if (name == "soa") return LayoutKind::SoA;
  if (name == "aosoa") return LayoutKind::AoSoA;
  raise("unknown layout '" + name +
                              "' (expected aos|soa|aosoa)");
}

bool LayoutConfig::enabled() const {
  if (kind != LayoutKind::AoS) return true;
  for (const auto& [_, k] : per_set)
    if (k != LayoutKind::AoS) return true;
  for (const auto& [_, k] : per_dat)
    if (k != LayoutKind::AoS) return true;
  return false;
}

LayoutKind LayoutConfig::resolve(const std::string& set,
                                 const std::string& dat) const {
  if (auto it = per_dat.find(dat); it != per_dat.end()) return it->second;
  if (auto it = per_set.find(set); it != per_set.end()) return it->second;
  return kind;
}

DatLayout DatLayout::make(LayoutKind kind, int dim, lidx_t elems,
                          lidx_t aosoa_block) {
  if (dim <= 0) raise("DatLayout: dim must be > 0");
  if (elems < 0) raise("DatLayout: elems must be >= 0");

  DatLayout lay;
  lay.kind = kind;
  lay.dim = dim;
  lay.elems = elems;

  switch (kind) {
    case LayoutKind::AoS:
      // Plain rows: bitwise-identical addressing to the legacy layout.
      lay.block = 1;
      lay.padded = elems;
      lay.cstride = 1;
      lay.bshift = 0;
      lay.bmask = 0;
      lay.brow = static_cast<std::size_t>(dim);
      break;
    case LayoutKind::SoA:
      // One block spanning every element: pad the plane length so each
      // component starts cache-aligned, and pick a shift past any valid
      // lidx_t so i >> bshift is always 0 (no second block exists).
      lay.padded = round_up_line(elems);
      lay.block = lay.padded;
      lay.cstride = lay.padded;
      lay.bshift = 30;
      lay.bmask = (lidx_t{1} << 30) - 1;
      lay.brow = 0;  // never reached: i >> 30 == 0 for valid indices
      break;
    case LayoutKind::AoSoA:
      if (!is_pow2(aosoa_block))
        raise(
            "DatLayout: aosoa_block must be a power of two");
      lay.block = aosoa_block;
      lay.padded =
          ((elems + aosoa_block - 1) / aosoa_block) * aosoa_block;
      lay.cstride = aosoa_block;
      lay.bshift = log2_pow2(aosoa_block);
      lay.bmask = aosoa_block - 1;
      lay.brow = static_cast<std::size_t>(aosoa_block) *
                 static_cast<std::size_t>(dim);
      break;
  }
  return lay;
}

void to_layout(const double* aos_rows, const DatLayout& lay, double* out) {
  if (lay.is_aos()) {
    std::memcpy(out, aos_rows,
                static_cast<std::size_t>(lay.elems) * lay.dim *
                    sizeof(double));
    return;
  }
  std::memset(out, 0, lay.alloc_doubles() * sizeof(double));
  for (lidx_t i = 0; i < lay.elems; ++i) {
    const double* row = aos_rows + static_cast<std::size_t>(i) * lay.dim;
    const std::size_t base = lay.elem_offset(i);
    for (int c = 0; c < lay.dim; ++c)
      out[base + static_cast<std::size_t>(c) * lay.cstride] = row[c];
  }
}

void from_layout(const double* data, const DatLayout& lay,
                 double* aos_rows) {
  if (lay.is_aos()) {
    std::memcpy(aos_rows, data,
                static_cast<std::size_t>(lay.elems) * lay.dim *
                    sizeof(double));
    return;
  }
  for (lidx_t i = 0; i < lay.elems; ++i) {
    double* row = aos_rows + static_cast<std::size_t>(i) * lay.dim;
    const std::size_t base = lay.elem_offset(i);
    for (int c = 0; c < lay.dim; ++c)
      row[c] = data[base + static_cast<std::size_t>(c) * lay.cstride];
  }
}

}  // namespace op2ca::mesh
