// Greedy mesh colouring for race-free shared-memory execution of
// indirect-increment loops (the classic OP2 intra-rank parallelisation:
// Reguly et al., "Acceleration of a Full-scale Industrial CFD
// Application with OP2"). Two from-set elements conflict when any map
// entering the colouring sends both onto the same target element; the
// colouring partitions the from-set into classes such that no class
// contains a conflict, so every class can execute its elements in any
// order — and in particular split across threads — with each written
// target touched by at most one element.
//
// The colouring is a pure function of (element count, target arrays):
// first-fit over elements in ascending index order. Thread count never
// enters, which is what makes colour-ordered parallel sweeps
// deterministic at any pool width.
#pragma once

#include <span>
#include <vector>

#include "op2ca/util/types.hpp"

namespace op2ca::mesh {

/// One map's localized view entering a colouring: row-major targets,
/// `targets[e * arity + k]`. kInvalidLocal entries are ignored (targets
/// outside the rank's region, only reachable from never-executed rows).
/// A view with arity 1 and targets[e] == e expresses identity conflicts
/// (a dat written directly while also accessed through a map).
struct ColourMapView {
  const lidx_t* targets = nullptr;
  int arity = 0;
  lidx_t num_elements = 0;  ///< rows available in `targets`.
  lidx_t num_targets = 0;   ///< size of the target index space.
};

struct Colouring {
  int num_colours = 0;
  std::vector<int> colour;       ///< per element, 0..num_colours-1.
  std::vector<LIdxVec> classes;  ///< per colour, ascending element ids.
  /// Conflict granularity: elements [b*block_elems, (b+1)*block_elems)
  /// form block b and share one colour. 1 = classic per-element
  /// colouring. With block_elems > 1 a colour class is conflict-free
  /// *between* blocks only — elements inside a block may conflict with
  /// each other, so a parallel sweep must keep each block on one thread
  /// and run it in ascending order (core/dispatch aligns its chunk
  /// boundaries to blocks).
  lidx_t block_elems = 1;
};

/// First-fit greedy colouring of elements [0, n): each element takes the
/// smallest colour unused by every earlier element it conflicts with
/// through any view. Deterministic; classes partition [0, n).
Colouring greedy_colouring(lidx_t n, std::span<const ColourMapView> views);

/// Locality-aware variant: colours contiguous blocks of `block_elems`
/// elements (two blocks conflict when any of their elements share a
/// target), so every colour class is a union of contiguous runs that the
/// dispatcher can execute as range regions instead of gathered lists.
/// block_elems <= 1 degenerates to greedy_colouring.
Colouring block_colouring(lidx_t n, std::span<const ColourMapView> views,
                          lidx_t block_elems);

/// Validity predicate (property tests): no two same-colour elements
/// share a target through any view. Honours `c.block_elems`: with
/// blocked colourings the conflict-free unit is the block, so
/// same-block sharing is legal.
bool colouring_valid(const Colouring& c, lidx_t n,
                     std::span<const ColourMapView> views);

/// The block-conflict adjacency underlying a blocked colouring: blocks a
/// and b are adjacent iff some element of a and some element of b share a
/// target through any view. Adjacent blocks always carry distinct
/// colours, so orienting every edge from the lower colour to the higher
/// one yields a DAG — the dependency graph the task-graph executor runs:
/// a block becomes runnable once all its lower-coloured neighbours
/// finished, and per written cell the accumulation order is the static
/// colour order, independent of how the schedule interleaves.
struct BlockGraph {
  lidx_t block_elems = 1;
  lidx_t num_blocks = 0;
  int num_colours = 0;
  std::vector<int> colour;          ///< per block, 0..num_colours-1.
  std::vector<std::size_t> adj_off; ///< CSR offsets, num_blocks + 1.
  LIdxVec adj;  ///< conflicting neighbour blocks, ascending per row.
};

/// Builds the symmetric block-conflict adjacency for `col` (a colouring
/// produced by block_colouring over the same n and views; requires
/// col.block_elems > 1). Deterministic: neighbour lists come out sorted.
BlockGraph block_conflict_graph(lidx_t n,
                                std::span<const ColourMapView> views,
                                const Colouring& col);

}  // namespace op2ca::mesh
