#include "op2ca/mesh/quad2d.hpp"

namespace op2ca::mesh {
namespace {

gidx_t node_id(gidx_t nx, gidx_t i, gidx_t j) { return j * (nx + 1) + i; }
gidx_t cell_id(gidx_t nx, gidx_t i, gidx_t j) { return j * nx + i; }

}  // namespace

Quad2D make_quad2d(gidx_t nx, gidx_t ny) {
  OP2CA_REQUIRE(nx >= 1 && ny >= 1, "make_quad2d needs nx, ny >= 1");
  Quad2D g;

  const gidx_t nnodes = (nx + 1) * (ny + 1);
  const gidx_t ncells = nx * ny;
  // Horizontal edges: nx per row, (ny+1) rows. Vertical: (nx+1) per row,
  // ny rows.
  const gidx_t nhedges = nx * (ny + 1);
  const gidx_t nvedges = (nx + 1) * ny;
  const gidx_t nedges = nhedges + nvedges;
  const gidx_t nbedges = 2 * nx + 2 * ny;

  g.nodes = g.mesh.add_set("nodes", nnodes);
  g.edges = g.mesh.add_set("edges", nedges);
  g.cells = g.mesh.add_set("cells", ncells);
  g.bedges = g.mesh.add_set("bedges", nbedges);

  GIdxVec e2n, e2c;
  e2n.reserve(static_cast<std::size_t>(2 * nedges));
  e2c.reserve(static_cast<std::size_t>(2 * nedges));

  // Horizontal edges (between node (i,j) and (i+1,j)); cells below/above.
  for (gidx_t j = 0; j <= ny; ++j) {
    for (gidx_t i = 0; i < nx; ++i) {
      e2n.push_back(node_id(nx, i, j));
      e2n.push_back(node_id(nx, i + 1, j));
      const gidx_t below = (j == 0) ? kInvalidGlobal : cell_id(nx, i, j - 1);
      const gidx_t above = (j == ny) ? kInvalidGlobal : cell_id(nx, i, j);
      const gidx_t c0 = below != kInvalidGlobal ? below : above;
      const gidx_t c1 = above != kInvalidGlobal ? above : below;
      e2c.push_back(c0);
      e2c.push_back(c1);
    }
  }
  // Vertical edges (between node (i,j) and (i,j+1)); cells left/right.
  for (gidx_t j = 0; j < ny; ++j) {
    for (gidx_t i = 0; i <= nx; ++i) {
      e2n.push_back(node_id(nx, i, j));
      e2n.push_back(node_id(nx, i, j + 1));
      const gidx_t left = (i == 0) ? kInvalidGlobal : cell_id(nx, i - 1, j);
      const gidx_t right = (i == nx) ? kInvalidGlobal : cell_id(nx, i, j);
      const gidx_t c0 = left != kInvalidGlobal ? left : right;
      const gidx_t c1 = right != kInvalidGlobal ? right : left;
      e2c.push_back(c0);
      e2c.push_back(c1);
    }
  }

  GIdxVec c2n;
  c2n.reserve(static_cast<std::size_t>(4 * ncells));
  for (gidx_t j = 0; j < ny; ++j) {
    for (gidx_t i = 0; i < nx; ++i) {
      c2n.push_back(node_id(nx, i, j));
      c2n.push_back(node_id(nx, i + 1, j));
      c2n.push_back(node_id(nx, i + 1, j + 1));
      c2n.push_back(node_id(nx, i, j + 1));
    }
  }

  GIdxVec be2n;
  be2n.reserve(static_cast<std::size_t>(2 * nbedges));
  for (gidx_t i = 0; i < nx; ++i) {  // bottom
    be2n.push_back(node_id(nx, i, 0));
    be2n.push_back(node_id(nx, i + 1, 0));
  }
  for (gidx_t i = 0; i < nx; ++i) {  // top
    be2n.push_back(node_id(nx, i, ny));
    be2n.push_back(node_id(nx, i + 1, ny));
  }
  for (gidx_t j = 0; j < ny; ++j) {  // left
    be2n.push_back(node_id(nx, 0, j));
    be2n.push_back(node_id(nx, 0, j + 1));
  }
  for (gidx_t j = 0; j < ny; ++j) {  // right
    be2n.push_back(node_id(nx, nx, j));
    be2n.push_back(node_id(nx, nx, j + 1));
  }

  g.e2n = g.mesh.add_map("e2n", g.edges, g.nodes, 2, std::move(e2n));
  g.e2c = g.mesh.add_map("e2c", g.edges, g.cells, 2, std::move(e2c));
  g.c2n = g.mesh.add_map("c2n", g.cells, g.nodes, 4, std::move(c2n));
  g.be2n = g.mesh.add_map("be2n", g.bedges, g.nodes, 2, std::move(be2n));

  std::vector<double> xy(static_cast<std::size_t>(2 * nnodes));
  for (gidx_t j = 0; j <= ny; ++j) {
    for (gidx_t i = 0; i <= nx; ++i) {
      const auto n = static_cast<std::size_t>(node_id(nx, i, j));
      xy[2 * n + 0] = static_cast<double>(i) / static_cast<double>(nx);
      xy[2 * n + 1] = static_cast<double>(j) / static_cast<double>(ny);
    }
  }
  g.coords = g.mesh.add_dat("coords", g.nodes, 2, std::move(xy));
  g.mesh.set_coords(g.nodes, g.coords);
  return g;
}

}  // namespace op2ca::mesh
