#include "op2ca/mesh/reorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "op2ca/util/error.hpp"
#include "op2ca/util/rng.hpp"

namespace op2ca::mesh {
namespace {

/// Quantisation resolution per axis for the Morton key. 20 bits x 3
/// axes = 60 bits, fits a uint64 key.
constexpr int kSfcBits = 20;

std::uint64_t interleave_bits(const std::uint32_t* q, int dim) {
  std::uint64_t key = 0;
  for (int b = 0; b < kSfcBits; ++b)
    for (int a = 0; a < dim; ++a)
      key |= static_cast<std::uint64_t>((q[a] >> b) & 1u)
             << (b * dim + a);
  return key;
}

}  // namespace

const char* reorder_kind_name(ReorderKind k) {
  switch (k) {
    case ReorderKind::None: return "none";
    case ReorderKind::RCM: return "rcm";
    case ReorderKind::SFC: return "sfc";
    case ReorderKind::Auto: return "auto";
  }
  return "?";
}

bool ReorderConfig::enabled() const {
  if (kind != ReorderKind::None) return true;
  for (const auto& [name, k] : per_set)
    if (k != ReorderKind::None) return true;
  return false;
}

ReorderKind ReorderConfig::for_set(const std::string& set_name) const {
  const auto it = per_set.find(set_name);
  return it == per_set.end() ? kind : it->second;
}

bool Permutation::is_identity() const {
  for (lidx_t i = 0; i < size(); ++i)
    if (new_of_old[static_cast<std::size_t>(i)] != i) return false;
  return true;
}

Permutation make_permutation(LIdxVec new_of_old) {
  Permutation p;
  p.new_of_old = std::move(new_of_old);
  const std::size_t n = p.new_of_old.size();
  p.old_of_new.assign(n, kInvalidLocal);
  for (std::size_t i = 0; i < n; ++i) {
    const lidx_t d = p.new_of_old[i];
    OP2CA_REQUIRE(d >= 0 && static_cast<std::size_t>(d) < n &&
                      p.old_of_new[static_cast<std::size_t>(d)] ==
                          kInvalidLocal,
                  "make_permutation: not a bijection");
    p.old_of_new[static_cast<std::size_t>(d)] = static_cast<lidx_t>(i);
  }
  return p;
}

bool permutation_valid(const Permutation& p) {
  const std::size_t n = p.new_of_old.size();
  if (p.old_of_new.size() != n) return false;
  std::vector<bool> hit(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const lidx_t d = p.new_of_old[i];
    if (d < 0 || static_cast<std::size_t>(d) >= n ||
        hit[static_cast<std::size_t>(d)])
      return false;
    hit[static_cast<std::size_t>(d)] = true;
    if (p.old_of_new[static_cast<std::size_t>(d)] !=
        static_cast<lidx_t>(i))
      return false;
  }
  return true;
}

bool permutation_preserves_blocks(const Permutation& p,
                                  const BlockVec& blocks) {
  if (p.empty()) return true;  // identity
  for (const auto& [b, e] : blocks)
    for (lidx_t i = b; i < e; ++i) {
      const lidx_t d = p.new_of_old[static_cast<std::size_t>(i)];
      if (d < b || d >= e) return false;
    }
  return true;
}

LocalCsr csr_from_edges(lidx_t n,
                        std::vector<std::pair<lidx_t, lidx_t>> edges) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  LocalCsr csr;
  csr.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges)
    if (u != v) ++csr.offsets[static_cast<std::size_t>(u) + 1];
  for (std::size_t i = 1; i < csr.offsets.size(); ++i)
    csr.offsets[i] += csr.offsets[i - 1];
  csr.adj.resize(csr.offsets.back());
  std::vector<std::size_t> at(csr.offsets.begin(), csr.offsets.end() - 1);
  for (const auto& [u, v] : edges)
    if (u != v) csr.adj[at[static_cast<std::size_t>(u)]++] = v;
  return csr;
}

Permutation rcm_order(const LocalCsr& adj, const BlockVec& blocks) {
  const lidx_t n = adj.num_rows();
  LIdxVec new_of_old(static_cast<std::size_t>(n));
  std::iota(new_of_old.begin(), new_of_old.end(), 0);

  std::vector<int> block_of(static_cast<std::size_t>(n), -1);
  for (std::size_t b = 0; b < blocks.size(); ++b)
    for (lidx_t i = blocks[b].first; i < blocks[b].second; ++i)
      block_of[static_cast<std::size_t>(i)] = static_cast<int>(b);

  // In-block degree (adjacency leaving the block does not count: it can
  // neither be followed nor violated).
  std::vector<lidx_t> degree(static_cast<std::size_t>(n), 0);
  for (lidx_t e = 0; e < n; ++e)
    for (lidx_t v : adj.row(e))
      if (block_of[static_cast<std::size_t>(v)] ==
          block_of[static_cast<std::size_t>(e)])
        ++degree[static_cast<std::size_t>(e)];

  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  LIdxVec order, frontier;
  for (const auto& [b0, b1] : blocks) {
    if (b1 - b0 < 2) continue;
    order.clear();
    // Seeds in ascending (degree, index): every component of the block
    // starts from a (locally) minimal-degree element, the usual RCM
    // pseudo-peripheral stand-in.
    LIdxVec seeds;
    for (lidx_t i = b0; i < b1; ++i) seeds.push_back(i);
    std::sort(seeds.begin(), seeds.end(), [&](lidx_t a, lidx_t b) {
      const lidx_t da = degree[static_cast<std::size_t>(a)];
      const lidx_t db = degree[static_cast<std::size_t>(b)];
      return da != db ? da < db : a < b;
    });
    for (lidx_t seed : seeds) {
      if (visited[static_cast<std::size_t>(seed)]) continue;
      visited[static_cast<std::size_t>(seed)] = 1;
      order.push_back(seed);
      for (std::size_t head = order.size() - 1; head < order.size();
           ++head) {
        const lidx_t u = order[head];
        frontier.clear();
        for (lidx_t v : adj.row(u)) {
          if (v < b0 || v >= b1) continue;
          if (visited[static_cast<std::size_t>(v)]) continue;
          visited[static_cast<std::size_t>(v)] = 1;
          frontier.push_back(v);
        }
        std::sort(frontier.begin(), frontier.end(),
                  [&](lidx_t a, lidx_t b) {
                    const lidx_t da = degree[static_cast<std::size_t>(a)];
                    const lidx_t db = degree[static_cast<std::size_t>(b)];
                    return da != db ? da < db : a < b;
                  });
        order.insert(order.end(), frontier.begin(), frontier.end());
      }
    }
    // Reverse Cuthill–McKee: the reversal tightens the profile.
    const lidx_t len = static_cast<lidx_t>(order.size());
    for (lidx_t m = 0; m < len; ++m)
      new_of_old[static_cast<std::size_t>(order[static_cast<std::size_t>(m)])] =
          b0 + (len - 1 - m);
  }
  return make_permutation(std::move(new_of_old));
}

Permutation sfc_order(std::span<const double> coords, int dim, lidx_t n,
                      const BlockVec& blocks) {
  OP2CA_REQUIRE(dim == 2 || dim == 3, "sfc_order: dim must be 2 or 3");
  OP2CA_REQUIRE(coords.size() >=
                    static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(dim),
                "sfc_order: coords shorter than n x dim");
  LIdxVec new_of_old(static_cast<std::size_t>(n));
  std::iota(new_of_old.begin(), new_of_old.end(), 0);

  std::vector<std::pair<std::uint64_t, lidx_t>> keyed;
  for (const auto& [b0, b1] : blocks) {
    if (b1 - b0 < 2) continue;
    double lo[3] = {std::numeric_limits<double>::max(),
                    std::numeric_limits<double>::max(),
                    std::numeric_limits<double>::max()};
    double hi[3] = {std::numeric_limits<double>::lowest(),
                    std::numeric_limits<double>::lowest(),
                    std::numeric_limits<double>::lowest()};
    for (lidx_t i = b0; i < b1; ++i)
      for (int a = 0; a < dim; ++a) {
        const double x = coords[static_cast<std::size_t>(i) *
                                    static_cast<std::size_t>(dim) +
                                static_cast<std::size_t>(a)];
        lo[a] = std::min(lo[a], x);
        hi[a] = std::max(hi[a], x);
      }
    const std::uint32_t qmax = (1u << kSfcBits) - 1u;
    keyed.clear();
    keyed.reserve(static_cast<std::size_t>(b1 - b0));
    for (lidx_t i = b0; i < b1; ++i) {
      std::uint32_t q[3] = {0, 0, 0};
      for (int a = 0; a < dim; ++a) {
        const double span = hi[a] - lo[a];
        if (span <= 0) continue;
        const double x = coords[static_cast<std::size_t>(i) *
                                    static_cast<std::size_t>(dim) +
                                static_cast<std::size_t>(a)];
        const double t = (x - lo[a]) / span;
        q[a] = static_cast<std::uint32_t>(
            std::min(1.0, std::max(0.0, t)) * qmax);
      }
      keyed.emplace_back(interleave_bits(q, dim), i);
    }
    std::sort(keyed.begin(), keyed.end());
    for (std::size_t m = 0; m < keyed.size(); ++m)
      new_of_old[static_cast<std::size_t>(keyed[m].second)] =
          b0 + static_cast<lidx_t>(m);
  }
  return make_permutation(std::move(new_of_old));
}

OrderingQuality ordering_quality(const lidx_t* targets, int arity,
                                 lidx_t num_elements, lidx_t num_targets) {
  OrderingQuality q;
  if (num_elements < 2 || arity < 1) return q;
  // gather_span: per-column jump between consecutive iterations.
  double span_sum = 0.0;
  std::int64_t span_n = 0;
  for (int k = 0; k < arity; ++k) {
    lidx_t prev = kInvalidLocal;
    for (lidx_t e = 0; e < num_elements; ++e) {
      const lidx_t t = targets[static_cast<std::size_t>(e) *
                                   static_cast<std::size_t>(arity) +
                               static_cast<std::size_t>(k)];
      if (t == kInvalidLocal) continue;
      if (prev != kInvalidLocal) {
        span_sum += std::abs(static_cast<double>(t) -
                             static_cast<double>(prev));
        ++span_n;
      }
      prev = t;
    }
  }
  if (span_n > 0) q.gather_span = span_sum / static_cast<double>(span_n);

  // reuse_gap: iteration distance between successive touches of the same
  // target, over all columns.
  std::vector<lidx_t> last_seen(static_cast<std::size_t>(num_targets),
                                kInvalidLocal);
  double gap_sum = 0.0;
  std::int64_t gap_n = 0;
  for (lidx_t e = 0; e < num_elements; ++e)
    for (int k = 0; k < arity; ++k) {
      const lidx_t t = targets[static_cast<std::size_t>(e) *
                                   static_cast<std::size_t>(arity) +
                               static_cast<std::size_t>(k)];
      if (t == kInvalidLocal || t >= num_targets) continue;
      lidx_t& seen = last_seen[static_cast<std::size_t>(t)];
      if (seen != kInvalidLocal && e != seen) {
        gap_sum += static_cast<double>(e - seen);
        ++gap_n;
      }
      seen = e;
    }
  if (gap_n > 0) q.reuse_gap = gap_sum / static_cast<double>(gap_n);
  return q;
}

MeshDef scramble_mesh(const MeshDef& in, std::uint64_t seed,
                      std::vector<GIdxVec>* perms_out) {
  Rng rng(seed);
  std::vector<GIdxVec> perm(static_cast<std::size_t>(in.num_sets()));
  for (set_id s = 0; s < in.num_sets(); ++s) {
    const gidx_t n = in.set(s).size;
    GIdxVec& p = perm[static_cast<std::size_t>(s)];
    p.resize(static_cast<std::size_t>(n));
    std::iota(p.begin(), p.end(), gidx_t{0});
    // Fisher–Yates with the repo's deterministic generator.
    for (gidx_t i = n - 1; i > 0; --i) {
      const gidx_t j = static_cast<gidx_t>(rng.next_int(0, i));
      std::swap(p[static_cast<std::size_t>(i)],
                p[static_cast<std::size_t>(j)]);
    }
  }

  MeshDef out;
  for (set_id s = 0; s < in.num_sets(); ++s)
    out.add_set(in.set(s).name, in.set(s).size);
  for (map_id m = 0; m < in.num_maps(); ++m) {
    const MapDef& md = in.map(m);
    const GIdxVec& pf = perm[static_cast<std::size_t>(md.from)];
    const GIdxVec& pt = perm[static_cast<std::size_t>(md.to)];
    GIdxVec targets(md.targets.size());
    const std::size_t ar = static_cast<std::size_t>(md.arity);
    for (std::size_t f = 0; f < pf.size(); ++f) {
      const std::size_t nf = static_cast<std::size_t>(pf[f]);
      for (std::size_t k = 0; k < ar; ++k)
        targets[nf * ar + k] =
            pt[static_cast<std::size_t>(md.targets[f * ar + k])];
    }
    out.add_map(md.name, md.from, md.to, md.arity, std::move(targets));
  }
  for (dat_id d = 0; d < in.num_dats(); ++d) {
    const DatDef& dd = in.dat(d);
    const GIdxVec& p = perm[static_cast<std::size_t>(dd.set)];
    std::vector<double> data(dd.data.size());
    const std::size_t dim = static_cast<std::size_t>(dd.dim);
    for (std::size_t e = 0; e < p.size(); ++e) {
      const std::size_t ne = static_cast<std::size_t>(p[e]);
      for (std::size_t c = 0; c < dim; ++c)
        data[ne * dim + c] = dd.data[e * dim + c];
    }
    out.add_dat(dd.name, dd.set, dd.dim, std::move(data));
  }
  if (in.has_coords()) out.set_coords(in.coords_set(), in.coords_dat());
  if (perms_out != nullptr) *perms_out = std::move(perm);
  return out;
}

}  // namespace op2ca::mesh
