#include "op2ca/mesh/multigrid.hpp"

#include <algorithm>
#include <array>
#include <string>

namespace op2ca::mesh {
namespace {

gidx_t node_id(gidx_t nx, gidx_t ny, gidx_t i, gidx_t j, gidx_t k) {
  return (k * (ny + 1) + j) * (nx + 1) + i;
}

/// Adds one level's node/edge/boundary sets and maps to `mesh`.
MgLevel add_level(MeshDef& mesh, int level, gidx_t nx, gidx_t ny, gidx_t nz) {
  MgLevel lv;
  lv.nx = nx;
  lv.ny = ny;
  lv.nz = nz;
  const std::string sfx = "_l" + std::to_string(level);

  const gidx_t nnodes = (nx + 1) * (ny + 1) * (nz + 1);
  const gidx_t nedges = nx * (ny + 1) * (nz + 1) + (nx + 1) * ny * (nz + 1) +
                        (nx + 1) * (ny + 1) * nz;
  lv.nodes = mesh.add_set("nodes" + sfx, nnodes);
  lv.edges = mesh.add_set("edges" + sfx, nedges);

  GIdxVec e2n;
  e2n.reserve(static_cast<std::size_t>(2 * nedges));
  for (gidx_t k = 0; k <= nz; ++k)
    for (gidx_t j = 0; j <= ny; ++j)
      for (gidx_t i = 0; i < nx; ++i) {
        e2n.push_back(node_id(nx, ny, i, j, k));
        e2n.push_back(node_id(nx, ny, i + 1, j, k));
      }
  for (gidx_t k = 0; k <= nz; ++k)
    for (gidx_t j = 0; j < ny; ++j)
      for (gidx_t i = 0; i <= nx; ++i) {
        e2n.push_back(node_id(nx, ny, i, j, k));
        e2n.push_back(node_id(nx, ny, i, j + 1, k));
      }
  for (gidx_t k = 0; k < nz; ++k)
    for (gidx_t j = 0; j <= ny; ++j)
      for (gidx_t i = 0; i <= nx; ++i) {
        e2n.push_back(node_id(nx, ny, i, j, k));
        e2n.push_back(node_id(nx, ny, i, j, k + 1));
      }
  lv.e2n = mesh.add_map("e2n" + sfx, lv.edges, lv.nodes, 2, std::move(e2n));

  GIdxVec b2n;
  for (gidx_t k = 0; k <= nz; ++k)
    for (gidx_t j = 0; j <= ny; ++j)
      for (gidx_t i = 0; i <= nx; ++i)
        if (i == 0 || i == nx || j == 0 || j == ny || k == 0 || k == nz)
          b2n.push_back(node_id(nx, ny, i, j, k));
  lv.bnodes = mesh.add_set("bnodes" + sfx, static_cast<gidx_t>(b2n.size()));
  lv.b2n = mesh.add_map("b2n" + sfx, lv.bnodes, lv.nodes, 1, std::move(b2n));
  return lv;
}

}  // namespace

MultigridHex make_multigrid_hex(gidx_t nx, gidx_t ny, gidx_t nz,
                                int num_levels) {
  OP2CA_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1,
                "make_multigrid_hex needs positive dims");
  OP2CA_REQUIRE(num_levels >= 1, "make_multigrid_hex needs >= 1 level");

  MultigridHex mg;
  std::vector<std::array<gidx_t, 3>> dims;
  gidx_t cx = nx, cy = ny, cz = nz;
  for (int l = 0; l < num_levels; ++l) {
    dims.push_back({cx, cy, cz});
    cx = std::max<gidx_t>(cx / 2, 1);
    cy = std::max<gidx_t>(cy / 2, 1);
    cz = std::max<gidx_t>(cz / 2, 1);
  }

  for (int l = 0; l < num_levels; ++l)
    mg.levels.push_back(
        add_level(mg.mesh, l, dims[static_cast<std::size_t>(l)][0],
                  dims[static_cast<std::size_t>(l)][1],
                  dims[static_cast<std::size_t>(l)][2]));

  // Inter-grid maps between consecutive levels.
  for (int l = 0; l + 1 < num_levels; ++l) {
    const MgLevel& fine = mg.levels[static_cast<std::size_t>(l)];
    const MgLevel& coarse = mg.levels[static_cast<std::size_t>(l) + 1];
    const std::string sfx =
        "_l" + std::to_string(l) + std::to_string(l + 1);

    // Fine node (i,j,k) restricts onto the nearest coarse node; the ratio
    // per dimension handles the floor-at-1 clamping.
    GIdxVec restr;
    restr.reserve(
        static_cast<std::size_t>((fine.nx + 1) * (fine.ny + 1) * (fine.nz + 1)));
    auto coarse_index = [](gidx_t fi, gidx_t fn, gidx_t cn) {
      if (fn == cn) return fi;
      const gidx_t ci = fi * cn / fn;  // floor mapping onto [0, cn].
      return std::min(ci, cn);
    };
    for (gidx_t k = 0; k <= fine.nz; ++k)
      for (gidx_t j = 0; j <= fine.ny; ++j)
        for (gidx_t i = 0; i <= fine.nx; ++i)
          restr.push_back(node_id(coarse.nx, coarse.ny,
                                  coarse_index(i, fine.nx, coarse.nx),
                                  coarse_index(j, fine.ny, coarse.ny),
                                  coarse_index(k, fine.nz, coarse.nz)));
    mg.restrict_maps.push_back(mg.mesh.add_map(
        "restrict" + sfx, fine.nodes, coarse.nodes, 1, std::move(restr)));

    // Coarse node (i,j,k) injects from the co-located fine node.
    GIdxVec prol;
    prol.reserve(static_cast<std::size_t>((coarse.nx + 1) * (coarse.ny + 1) *
                                          (coarse.nz + 1)));
    auto fine_index = [](gidx_t ci, gidx_t cn, gidx_t fn) {
      if (fn == cn) return ci;
      return std::min(ci * fn / cn, fn);
    };
    for (gidx_t k = 0; k <= coarse.nz; ++k)
      for (gidx_t j = 0; j <= coarse.ny; ++j)
        for (gidx_t i = 0; i <= coarse.nx; ++i)
          prol.push_back(node_id(fine.nx, fine.ny,
                                 fine_index(i, coarse.nx, fine.nx),
                                 fine_index(j, coarse.ny, fine.ny),
                                 fine_index(k, coarse.nz, fine.nz)));
    mg.prolong_maps.push_back(mg.mesh.add_map(
        "prolong" + sfx, coarse.nodes, fine.nodes, 1, std::move(prol)));
  }

  // Level-0 node coordinates (for geometric partitioning).
  const MgLevel& l0 = mg.levels.front();
  const gidx_t nn0 = (l0.nx + 1) * (l0.ny + 1) * (l0.nz + 1);
  std::vector<double> xyz(static_cast<std::size_t>(3 * nn0));
  for (gidx_t k = 0; k <= l0.nz; ++k)
    for (gidx_t j = 0; j <= l0.ny; ++j)
      for (gidx_t i = 0; i <= l0.nx; ++i) {
        const auto n = static_cast<std::size_t>(node_id(l0.nx, l0.ny, i, j, k));
        xyz[3 * n + 0] = static_cast<double>(i) / static_cast<double>(l0.nx);
        xyz[3 * n + 1] = static_cast<double>(j) / static_cast<double>(l0.ny);
        xyz[3 * n + 2] = static_cast<double>(k) / static_cast<double>(l0.nz);
      }
  mg.coords = mg.mesh.add_dat("coords", l0.nodes, 3, std::move(xyz));
  mg.mesh.set_coords(l0.nodes, mg.coords);
  return mg;
}

}  // namespace op2ca::mesh
