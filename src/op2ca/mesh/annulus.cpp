#include "op2ca/mesh/annulus.hpp"

#include <cmath>

namespace op2ca::mesh {
namespace {

constexpr double kHubRadius = 0.5;
constexpr double kCasingRadius = 1.0;
constexpr double kPitchRadians = 20.0 * 3.14159265358979323846 / 180.0;

gidx_t node_id(gidx_t nr, gidx_t nt, gidx_t r, gidx_t t, gidx_t z) {
  return (z * (nt + 1) + t) * (nr + 1) + r;
}

gidx_t cell_id(gidx_t nr, gidx_t nt, gidx_t r, gidx_t t, gidx_t z) {
  return (z * nt + t) * nr + r;
}

}  // namespace

Annulus make_annulus(gidx_t nr, gidx_t nt, gidx_t nz) {
  OP2CA_REQUIRE(nr >= 1 && nt >= 1 && nz >= 1,
                "make_annulus needs nr, nt, nz >= 1");
  Annulus g;
  g.nr = nr;
  g.nt = nt;
  g.nz = nz;

  const gidx_t nnodes = (nr + 1) * (nt + 1) * (nz + 1);
  const gidx_t ncells = nr * nt * nz;
  const gidx_t ner = nr * (nt + 1) * (nz + 1);
  const gidx_t net = (nr + 1) * nt * (nz + 1);
  const gidx_t nez = (nr + 1) * (nt + 1) * nz;
  const gidx_t nedges = ner + net + nez;

  g.nodes = g.mesh.add_set("nodes", nnodes);
  g.edges = g.mesh.add_set("edges", nedges);
  g.cells = g.mesh.add_set("cells", ncells);

  GIdxVec e2n, e2c;
  e2n.reserve(static_cast<std::size_t>(2 * nedges));
  e2c.reserve(static_cast<std::size_t>(2 * nedges));

  // Appends the two cells adjacent to an edge along direction `dir`
  // (0=r, 1=t, 2=z) starting at grid node (r, t, z). An edge along r at
  // (r,t,z) borders cells in the (t,z) cross-plane; we take the two cells
  // straddling it diagonally, clamping at domain boundaries.
  auto push_edge_cells = [&](int dir, gidx_t r, gidx_t t, gidx_t z) {
    auto clamp_cell = [&](gidx_t cr, gidx_t ct, gidx_t cz) -> gidx_t {
      if (cr < 0 || cr >= nr || ct < 0 || ct >= nt || cz < 0 || cz >= nz)
        return kInvalidGlobal;
      return cell_id(nr, nt, cr, ct, cz);
    };
    gidx_t a = kInvalidGlobal, b = kInvalidGlobal;
    if (dir == 0) {  // r-edge: neighbours differ in t.
      a = clamp_cell(r, t - 1, std::min(z, nz - 1));
      b = clamp_cell(r, t, std::min(z, nz - 1));
    } else if (dir == 1) {  // t-edge: neighbours differ in r.
      a = clamp_cell(r - 1, t, std::min(z, nz - 1));
      b = clamp_cell(r, t, std::min(z, nz - 1));
    } else {  // z-edge: neighbours differ in r.
      a = clamp_cell(r - 1, std::min(t, nt - 1), z);
      b = clamp_cell(r, std::min(t, nt - 1), z);
    }
    if (a == kInvalidGlobal) a = b;
    if (b == kInvalidGlobal) b = a;
    OP2CA_ASSERT(a != kInvalidGlobal, "edge with no adjacent cell");
    e2c.push_back(a);
    e2c.push_back(b);
  };

  for (gidx_t z = 0; z <= nz; ++z)
    for (gidx_t t = 0; t <= nt; ++t)
      for (gidx_t r = 0; r < nr; ++r) {
        e2n.push_back(node_id(nr, nt, r, t, z));
        e2n.push_back(node_id(nr, nt, r + 1, t, z));
        push_edge_cells(0, r, t, z);
      }
  for (gidx_t z = 0; z <= nz; ++z)
    for (gidx_t t = 0; t < nt; ++t)
      for (gidx_t r = 0; r <= nr; ++r) {
        e2n.push_back(node_id(nr, nt, r, t, z));
        e2n.push_back(node_id(nr, nt, r, t + 1, z));
        push_edge_cells(1, r, t, z);
      }
  for (gidx_t z = 0; z < nz; ++z)
    for (gidx_t t = 0; t <= nt; ++t)
      for (gidx_t r = 0; r <= nr; ++r) {
        e2n.push_back(node_id(nr, nt, r, t, z));
        e2n.push_back(node_id(nr, nt, r, t, z + 1));
        push_edge_cells(2, r, t, z);
      }

  g.e2n = g.mesh.add_map("e2n", g.edges, g.nodes, 2, std::move(e2n));
  g.e2c = g.mesh.add_map("e2c", g.edges, g.cells, 2, std::move(e2c));

  // Periodic pitch pairs: node (r, 0, z) <-> node (r, nt, z).
  GIdxVec pe2n;
  for (gidx_t z = 0; z <= nz; ++z)
    for (gidx_t r = 0; r <= nr; ++r) {
      pe2n.push_back(node_id(nr, nt, r, 0, z));
      pe2n.push_back(node_id(nr, nt, r, nt, z));
    }
  g.pedges = g.mesh.add_set("pedges", static_cast<gidx_t>(pe2n.size() / 2));
  g.pe2n = g.mesh.add_map("pe2n", g.pedges, g.nodes, 2, std::move(pe2n));

  // Boundary markers: hub (r=0), casing (r=nr), inlet (z=0), outlet (z=nz).
  GIdxVec b2n;
  for (gidx_t z = 0; z <= nz; ++z)
    for (gidx_t t = 0; t <= nt; ++t) {
      b2n.push_back(node_id(nr, nt, 0, t, z));
      b2n.push_back(node_id(nr, nt, nr, t, z));
    }
  for (gidx_t t = 0; t <= nt; ++t)
    for (gidx_t r = 1; r < nr; ++r) {  // skip hub/casing corners (already in)
      b2n.push_back(node_id(nr, nt, r, t, 0));
      b2n.push_back(node_id(nr, nt, r, t, nz));
    }
  g.bnd = g.mesh.add_set("bnd", static_cast<gidx_t>(b2n.size()));
  g.b2n = g.mesh.add_map("b2n", g.bnd, g.nodes, 1, std::move(b2n));

  // Centreline boundary: hub circle at the inlet plane.
  GIdxVec cb2n;
  for (gidx_t t = 0; t <= nt; ++t)
    cb2n.push_back(node_id(nr, nt, 0, t, 0));
  g.cbnd = g.mesh.add_set("cbnd", static_cast<gidx_t>(cb2n.size()));
  g.cb2n = g.mesh.add_map("cb2n", g.cbnd, g.nodes, 1, std::move(cb2n));

  std::vector<double> xyz(static_cast<std::size_t>(3 * nnodes));
  for (gidx_t z = 0; z <= nz; ++z)
    for (gidx_t t = 0; t <= nt; ++t)
      for (gidx_t r = 0; r <= nr; ++r) {
        const double radius =
            kHubRadius + (kCasingRadius - kHubRadius) *
                             static_cast<double>(r) / static_cast<double>(nr);
        const double theta =
            kPitchRadians * static_cast<double>(t) / static_cast<double>(nt);
        const auto n = static_cast<std::size_t>(node_id(nr, nt, r, t, z));
        xyz[3 * n + 0] = radius * std::cos(theta);
        xyz[3 * n + 1] = radius * std::sin(theta);
        xyz[3 * n + 2] = static_cast<double>(z) / static_cast<double>(nz);
      }
  g.coords = g.mesh.add_dat("coords", g.nodes, 3, std::move(xyz));
  g.mesh.set_coords(g.nodes, g.coords);
  return g;
}

void pick_annulus_dims(gidx_t target_nodes, gidx_t* nr, gidx_t* nt,
                       gidx_t* nz) {
  OP2CA_REQUIRE(target_nodes >= 27, "pick_annulus_dims target too small");
  // Rotor-passage-like aspect: axial ~2x pitchwise, pitchwise ~2x radial.
  // nodes ~= (nr+1)(nt+1)(nz+1) with nt = 2 nr, nz = 4 nr.
  const double base =
      std::cbrt(static_cast<double>(target_nodes) / 8.0);
  gidx_t r = static_cast<gidx_t>(std::llround(base)) - 1;
  if (r < 1) r = 1;
  *nr = r;
  *nt = 2 * r;
  *nz = 4 * r;
}

}  // namespace op2ca::mesh
