// 2D structured-quad mesh expressed as unstructured sets/maps — the
// nodes/edges/cells mesh of Fig. 1 of the paper. Used by the quickstart
// example, the airfoil example and most unit/property tests.
#pragma once

#include "op2ca/mesh/mesh_def.hpp"

namespace op2ca::mesh {

/// Handles into the MeshDef a generator produced.
struct Quad2D {
  MeshDef mesh;
  set_id nodes = -1, edges = -1, cells = -1, bedges = -1;
  map_id e2n = -1;  ///< edge -> 2 nodes.
  map_id e2c = -1;  ///< edge -> 2 cells (boundary edges repeat the cell).
  map_id c2n = -1;  ///< cell -> 4 nodes (counter-clockwise).
  map_id be2n = -1; ///< boundary edge -> 2 nodes.
  dat_id coords = -1;  ///< node coordinates, dim 2.
};

/// Builds an (nx x ny)-cell quad mesh on [0,1]^2.
/// Interior edges carry their two adjacent cells in e2c; boundary edges
/// appear both in `edges` (with the adjacent cell duplicated) and in the
/// separate `bedges` set.
Quad2D make_quad2d(gidx_t nx, gidx_t ny);

}  // namespace op2ca::mesh
