// CSR adjacency structures derived from mesh maps: reverse maps
// (to-set -> from-set incidence) and symmetric element graphs used by the
// partitioners and by halo-layer BFS.
#pragma once

#include <span>
#include <vector>

#include "op2ca/mesh/mesh_def.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::mesh {

/// Compressed sparse rows: neighbors of element e are
/// adj[offsets[e] .. offsets[e+1]).
struct Csr {
  std::vector<gidx_t> offsets;  ///< size = num_rows + 1.
  GIdxVec adj;

  gidx_t num_rows() const {
    return static_cast<gidx_t>(offsets.empty() ? 0 : offsets.size() - 1);
  }
  std::span<const gidx_t> row(gidx_t e) const {
    const auto b = static_cast<std::size_t>(offsets[static_cast<std::size_t>(e)]);
    const auto e2 =
        static_cast<std::size_t>(offsets[static_cast<std::size_t>(e) + 1]);
    return {adj.data() + b, e2 - b};
  }
};

/// Reverse incidence of a map: for each to-set element, the from-set
/// elements mapping onto it.
Csr reverse_map(const MeshDef& mesh, map_id m);

/// Symmetric graph over elements of `s`: two elements are adjacent when a
/// single element of some from-set maps onto both of them (e.g. two nodes
/// sharing an edge). Self-loops and duplicates removed; rows sorted.
Csr set_graph(const MeshDef& mesh, set_id s);

/// Element-averaged coordinates for set `s`: if `s` is the coords set its
/// own coordinates, otherwise the mean of mapped coords-set targets
/// (searching one map hop from `s`, then via reverse maps). Dimension is
/// the coords dat dim. Raises if no geometric path exists.
std::vector<double> derive_coords(const MeshDef& mesh, set_id s);

}  // namespace op2ca::mesh
