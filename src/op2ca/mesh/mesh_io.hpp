// Plain-text mesh I/O, so applications can run op2ca on externally
// generated meshes (the role op_decl_* + HDF5 plays for real OP2).
//
// Format (whitespace-separated, '#' comments):
//
//   op2ca-mesh 1
//   set <name> <size>
//   map <name> <from-set> <to-set> <arity>
//     <arity targets per from-element, size*arity integers>
//   dat <name> <set> <dim>
//     <size*dim doubles>
//   coords <set> <dat>          # optional, at most once
//
// Sections may appear in any order as long as referenced sets exist.
#pragma once

#include <iosfwd>
#include <string>

#include "op2ca/mesh/mesh_def.hpp"

namespace op2ca::mesh {

/// Parses a mesh from a stream; raises on malformed input.
MeshDef read_meshdef(std::istream& in);
/// Convenience: opens and parses `path`.
MeshDef read_meshdef_file(const std::string& path);

/// Serializes a mesh (including dat values) to a stream.
void write_meshdef(std::ostream& os, const MeshDef& mesh);
void write_meshdef_file(const std::string& path, const MeshDef& mesh);

}  // namespace op2ca::mesh
