#include "op2ca/mesh/mesh_io.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "op2ca/util/error.hpp"

namespace op2ca::mesh {
namespace {

/// Token reader that skips '#' comments to end of line.
class Tokens {
public:
  explicit Tokens(std::istream& in) : in_(in) {}

  bool next(std::string* out) {
    while (in_ >> *out) {
      if ((*out)[0] == '#') {
        in_.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
        continue;
      }
      return true;
    }
    return false;
  }

  std::string expect(const std::string& what) {
    std::string tok;
    OP2CA_REQUIRE(next(&tok), "mesh file ended while reading " + what);
    return tok;
  }

  gidx_t expect_int(const std::string& what) {
    const std::string tok = expect(what);
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(tok, &pos);
      OP2CA_REQUIRE(pos == tok.size(), "bad integer for " + what);
      return static_cast<gidx_t>(v);
    } catch (const std::exception&) {
      raise("mesh file: bad integer '" + tok + "' for " + what);
    }
  }

  double expect_double(const std::string& what) {
    const std::string tok = expect(what);
    try {
      std::size_t pos = 0;
      const double v = std::stod(tok, &pos);
      OP2CA_REQUIRE(pos == tok.size(), "bad number for " + what);
      return v;
    } catch (const std::exception&) {
      raise("mesh file: bad number '" + tok + "' for " + what);
    }
  }

private:
  std::istream& in_;
};

set_id require_set(const MeshDef& m, const std::string& name) {
  const auto id = m.find_set(name);
  OP2CA_REQUIRE(id.has_value(), "mesh file references unknown set '" +
                                    name + "'");
  return *id;
}

}  // namespace

MeshDef read_meshdef(std::istream& in) {
  Tokens tok(in);
  std::string word = tok.expect("header");
  OP2CA_REQUIRE(word == "op2ca-mesh",
                "mesh file: expected 'op2ca-mesh' header, got '" + word +
                    "'");
  const gidx_t version = tok.expect_int("format version");
  OP2CA_REQUIRE(version == 1, "mesh file: unsupported version " +
                                  std::to_string(version));

  MeshDef mesh;
  while (tok.next(&word)) {
    if (word == "set") {
      const std::string name = tok.expect("set name");
      const gidx_t size = tok.expect_int("set size");
      mesh.add_set(name, size);
    } else if (word == "map") {
      const std::string name = tok.expect("map name");
      const set_id from = require_set(mesh, tok.expect("map from-set"));
      const set_id to = require_set(mesh, tok.expect("map to-set"));
      const gidx_t arity = tok.expect_int("map arity");
      OP2CA_REQUIRE(arity > 0 && arity <= 64,
                    "mesh file: implausible map arity");
      GIdxVec targets;
      targets.reserve(
          static_cast<std::size_t>(mesh.set(from).size * arity));
      for (gidx_t i = 0; i < mesh.set(from).size * arity; ++i)
        targets.push_back(tok.expect_int("map target"));
      mesh.add_map(name, from, to, static_cast<int>(arity),
                   std::move(targets));
    } else if (word == "dat") {
      const std::string name = tok.expect("dat name");
      const set_id set = require_set(mesh, tok.expect("dat set"));
      const gidx_t dim = tok.expect_int("dat dim");
      OP2CA_REQUIRE(dim > 0 && dim <= 64,
                    "mesh file: implausible dat dim");
      std::vector<double> data;
      data.reserve(static_cast<std::size_t>(mesh.set(set).size * dim));
      for (gidx_t i = 0; i < mesh.set(set).size * dim; ++i)
        data.push_back(tok.expect_double("dat value"));
      mesh.add_dat(name, set, static_cast<int>(dim), std::move(data));
    } else if (word == "coords") {
      const set_id set = require_set(mesh, tok.expect("coords set"));
      const std::string dat_name = tok.expect("coords dat");
      const auto dat = mesh.find_dat(dat_name);
      OP2CA_REQUIRE(dat.has_value(),
                    "mesh file: coords references unknown dat '" +
                        dat_name + "'");
      mesh.set_coords(set, *dat);
    } else {
      raise("mesh file: unknown directive '" + word + "'");
    }
  }
  OP2CA_REQUIRE(mesh.num_sets() > 0, "mesh file declared no sets");
  return mesh;
}

MeshDef read_meshdef_file(const std::string& path) {
  std::ifstream in(path);
  OP2CA_REQUIRE(in.good(), "cannot open mesh file " + path);
  return read_meshdef(in);
}

void write_meshdef(std::ostream& os, const MeshDef& mesh) {
  os << "op2ca-mesh 1\n";
  for (set_id s = 0; s < mesh.num_sets(); ++s)
    os << "set " << mesh.set(s).name << ' ' << mesh.set(s).size << '\n';
  for (map_id m = 0; m < mesh.num_maps(); ++m) {
    const MapDef& mp = mesh.map(m);
    os << "map " << mp.name << ' ' << mesh.set(mp.from).name << ' '
       << mesh.set(mp.to).name << ' ' << mp.arity << '\n';
    for (std::size_t i = 0; i < mp.targets.size(); ++i)
      os << mp.targets[i]
         << ((i + 1) % static_cast<std::size_t>(mp.arity) == 0 ? '\n'
                                                               : ' ');
  }
  os.precision(17);
  for (dat_id d = 0; d < mesh.num_dats(); ++d) {
    const DatDef& dd = mesh.dat(d);
    os << "dat " << dd.name << ' ' << mesh.set(dd.set).name << ' '
       << dd.dim << '\n';
    for (std::size_t i = 0; i < dd.data.size(); ++i)
      os << dd.data[i]
         << ((i + 1) % static_cast<std::size_t>(dd.dim) == 0 ? '\n' : ' ');
  }
  if (mesh.has_coords())
    os << "coords " << mesh.set(mesh.coords_set()).name << ' '
       << mesh.dat(mesh.coords_dat()).name << '\n';
}

void write_meshdef_file(const std::string& path, const MeshDef& mesh) {
  std::ofstream os(path);
  OP2CA_REQUIRE(os.good(), "cannot open " + path + " for writing");
  write_meshdef(os, mesh);
  OP2CA_REQUIRE(os.good(), "write failed for " + path);
}

}  // namespace op2ca::mesh
