// 3D structured-hex mesh expressed as unstructured sets/maps: the
// node/edge mesh MG-CFD operates on (node-centred finite volume, edges
// connecting node pairs), plus hex cells and a boundary-node set.
#pragma once

#include "op2ca/mesh/mesh_def.hpp"

namespace op2ca::mesh {

struct Hex3D {
  MeshDef mesh;
  set_id nodes = -1, edges = -1, cells = -1, bnodes = -1;
  map_id e2n = -1;   ///< edge -> 2 nodes.
  map_id c2n = -1;   ///< cell -> 8 nodes.
  map_id b2n = -1;   ///< boundary marker -> 1 node.
  dat_id coords = -1;  ///< node coordinates, dim 3.

  gidx_t nx = 0, ny = 0, nz = 0;  ///< cells per dimension.
};

/// Builds an (nx x ny x nz)-cell hex mesh on [0,1]^3. Edges run along the
/// three axes between neighbouring nodes; `bnodes` marks every node on the
/// outer surface (one marker element per boundary node).
Hex3D make_hex3d(gidx_t nx, gidx_t ny, gidx_t nz);

/// Chooses (nx, ny, nz) with nx*ny*nz nodes ~ target_nodes and near-cubic
/// aspect; used by benches to realise "8M" / "24M" style sizes.
void pick_dims_for_nodes(gidx_t target_nodes, gidx_t* nx, gidx_t* ny,
                         gidx_t* nz);

}  // namespace op2ca::mesh
