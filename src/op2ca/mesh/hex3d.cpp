#include "op2ca/mesh/hex3d.hpp"

#include <cmath>

namespace op2ca::mesh {
namespace {

gidx_t node_id(gidx_t nx, gidx_t ny, gidx_t i, gidx_t j, gidx_t k) {
  return (k * (ny + 1) + j) * (nx + 1) + i;
}

}  // namespace

Hex3D make_hex3d(gidx_t nx, gidx_t ny, gidx_t nz) {
  OP2CA_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1,
                "make_hex3d needs nx, ny, nz >= 1");
  Hex3D g;
  g.nx = nx;
  g.ny = ny;
  g.nz = nz;

  const gidx_t nnodes = (nx + 1) * (ny + 1) * (nz + 1);
  const gidx_t ncells = nx * ny * nz;
  const gidx_t nex = nx * (ny + 1) * (nz + 1);
  const gidx_t ney = (nx + 1) * ny * (nz + 1);
  const gidx_t nez = (nx + 1) * (ny + 1) * nz;
  const gidx_t nedges = nex + ney + nez;

  g.nodes = g.mesh.add_set("nodes", nnodes);
  g.edges = g.mesh.add_set("edges", nedges);
  g.cells = g.mesh.add_set("cells", ncells);

  GIdxVec e2n;
  e2n.reserve(static_cast<std::size_t>(2 * nedges));
  for (gidx_t k = 0; k <= nz; ++k)
    for (gidx_t j = 0; j <= ny; ++j)
      for (gidx_t i = 0; i < nx; ++i) {
        e2n.push_back(node_id(nx, ny, i, j, k));
        e2n.push_back(node_id(nx, ny, i + 1, j, k));
      }
  for (gidx_t k = 0; k <= nz; ++k)
    for (gidx_t j = 0; j < ny; ++j)
      for (gidx_t i = 0; i <= nx; ++i) {
        e2n.push_back(node_id(nx, ny, i, j, k));
        e2n.push_back(node_id(nx, ny, i, j + 1, k));
      }
  for (gidx_t k = 0; k < nz; ++k)
    for (gidx_t j = 0; j <= ny; ++j)
      for (gidx_t i = 0; i <= nx; ++i) {
        e2n.push_back(node_id(nx, ny, i, j, k));
        e2n.push_back(node_id(nx, ny, i, j, k + 1));
      }
  g.e2n = g.mesh.add_map("e2n", g.edges, g.nodes, 2, std::move(e2n));

  GIdxVec c2n;
  c2n.reserve(static_cast<std::size_t>(8 * ncells));
  for (gidx_t k = 0; k < nz; ++k)
    for (gidx_t j = 0; j < ny; ++j)
      for (gidx_t i = 0; i < nx; ++i) {
        c2n.push_back(node_id(nx, ny, i, j, k));
        c2n.push_back(node_id(nx, ny, i + 1, j, k));
        c2n.push_back(node_id(nx, ny, i + 1, j + 1, k));
        c2n.push_back(node_id(nx, ny, i, j + 1, k));
        c2n.push_back(node_id(nx, ny, i, j, k + 1));
        c2n.push_back(node_id(nx, ny, i + 1, j, k + 1));
        c2n.push_back(node_id(nx, ny, i + 1, j + 1, k + 1));
        c2n.push_back(node_id(nx, ny, i, j + 1, k + 1));
      }
  g.c2n = g.mesh.add_map("c2n", g.cells, g.nodes, 8, std::move(c2n));

  GIdxVec b2n;
  for (gidx_t k = 0; k <= nz; ++k)
    for (gidx_t j = 0; j <= ny; ++j)
      for (gidx_t i = 0; i <= nx; ++i)
        if (i == 0 || i == nx || j == 0 || j == ny || k == 0 || k == nz)
          b2n.push_back(node_id(nx, ny, i, j, k));
  g.bnodes = g.mesh.add_set("bnodes", static_cast<gidx_t>(b2n.size()));
  g.b2n = g.mesh.add_map("b2n", g.bnodes, g.nodes, 1, std::move(b2n));

  std::vector<double> xyz(static_cast<std::size_t>(3 * nnodes));
  for (gidx_t k = 0; k <= nz; ++k)
    for (gidx_t j = 0; j <= ny; ++j)
      for (gidx_t i = 0; i <= nx; ++i) {
        const auto n = static_cast<std::size_t>(node_id(nx, ny, i, j, k));
        xyz[3 * n + 0] = static_cast<double>(i) / static_cast<double>(nx);
        xyz[3 * n + 1] = static_cast<double>(j) / static_cast<double>(ny);
        xyz[3 * n + 2] = static_cast<double>(k) / static_cast<double>(nz);
      }
  g.coords = g.mesh.add_dat("coords", g.nodes, 3, std::move(xyz));
  g.mesh.set_coords(g.nodes, g.coords);
  return g;
}

void pick_dims_for_nodes(gidx_t target_nodes, gidx_t* nx, gidx_t* ny,
                         gidx_t* nz) {
  OP2CA_REQUIRE(target_nodes >= 8, "pick_dims_for_nodes target too small");
  const double side = std::cbrt(static_cast<double>(target_nodes));
  // Node count is (n+1)^3 for n cells per side.
  gidx_t n = static_cast<gidx_t>(std::llround(side)) - 1;
  if (n < 1) n = 1;
  *nx = n;
  *ny = n;
  *nz = n;
}

}  // namespace op2ca::mesh
