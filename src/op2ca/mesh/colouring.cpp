#include "op2ca/mesh/colouring.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "op2ca/util/error.hpp"

namespace op2ca::mesh {
namespace {

/// Per-target bitmask of colours already claimed, `words` 64-bit words
/// per target across all views (targets of view v live at offset[v]).
struct ColourMasks {
  std::vector<std::uint64_t> bits;
  std::vector<std::size_t> offset;  ///< per view, in targets.
  std::size_t words = 1;
  std::size_t targets = 0;

  explicit ColourMasks(std::span<const ColourMapView> views) {
    offset.reserve(views.size());
    for (const ColourMapView& v : views) {
      offset.push_back(targets);
      targets += static_cast<std::size_t>(v.num_targets);
    }
    bits.assign(targets, 0);
  }

  std::uint64_t* mask(std::size_t view, lidx_t t) {
    return bits.data() +
           (offset[view] + static_cast<std::size_t>(t)) * words;
  }

  /// Doubles capacity: conflict degrees exceeding 64 * words colours.
  void widen() {
    std::vector<std::uint64_t> wide(targets * (words + 1), 0);
    for (std::size_t t = 0; t < targets; ++t)
      for (std::size_t w = 0; w < words; ++w)
        wide[t * (words + 1) + w] = bits[t * words + w];
    bits = std::move(wide);
    ++words;
  }
};

}  // namespace

Colouring greedy_colouring(lidx_t n, std::span<const ColourMapView> views) {
  for (const ColourMapView& v : views)
    OP2CA_REQUIRE(v.num_elements >= n,
                  "greedy_colouring: view covers fewer rows than the set");

  Colouring out;
  out.colour.assign(static_cast<std::size_t>(n), 0);
  ColourMasks masks(views);

  for (lidx_t e = 0; e < n; ++e) {
    int c = -1;
    while (c < 0) {
      // OR the claimed-colour masks of every target of e.
      std::vector<std::uint64_t> forbidden(masks.words, 0);
      for (std::size_t v = 0; v < views.size(); ++v) {
        const ColourMapView& view = views[v];
        for (int k = 0; k < view.arity; ++k) {
          const lidx_t t =
              view.targets[static_cast<std::size_t>(e) *
                               static_cast<std::size_t>(view.arity) +
                           static_cast<std::size_t>(k)];
          if (t == kInvalidLocal) continue;
          const std::uint64_t* m = masks.mask(v, t);
          for (std::size_t w = 0; w < masks.words; ++w) forbidden[w] |= m[w];
        }
      }
      for (std::size_t w = 0; w < masks.words && c < 0; ++w) {
        if (forbidden[w] == ~std::uint64_t{0}) continue;
        const int bit = std::countr_one(forbidden[w]);
        c = static_cast<int>(w * 64) + bit;
      }
      if (c < 0) masks.widen();  // retry with more words
    }
    out.colour[static_cast<std::size_t>(e)] = c;
    out.num_colours = std::max(out.num_colours, c + 1);
    for (std::size_t v = 0; v < views.size(); ++v) {
      const ColourMapView& view = views[v];
      for (int k = 0; k < view.arity; ++k) {
        const lidx_t t =
            view.targets[static_cast<std::size_t>(e) *
                             static_cast<std::size_t>(view.arity) +
                         static_cast<std::size_t>(k)];
        if (t == kInvalidLocal) continue;
        masks.mask(v, t)[static_cast<std::size_t>(c) / 64] |=
            std::uint64_t{1} << (static_cast<std::size_t>(c) % 64);
      }
    }
  }

  out.classes.resize(static_cast<std::size_t>(out.num_colours));
  for (lidx_t e = 0; e < n; ++e)
    out.classes[static_cast<std::size_t>(out.colour[static_cast<std::size_t>(e)])]
        .push_back(e);
  return out;
}

Colouring block_colouring(lidx_t n, std::span<const ColourMapView> views,
                          lidx_t block_elems) {
  if (block_elems <= 1) return greedy_colouring(n, views);
  for (const ColourMapView& v : views)
    OP2CA_REQUIRE(v.num_elements >= n,
                  "block_colouring: view covers fewer rows than the set");

  Colouring out;
  out.block_elems = block_elems;
  out.colour.assign(static_cast<std::size_t>(n), 0);
  ColourMasks masks(views);

  for (lidx_t b0 = 0; b0 < n; b0 += block_elems) {
    const lidx_t b1 = std::min<lidx_t>(n, b0 + block_elems);
    int c = -1;
    while (c < 0) {
      std::vector<std::uint64_t> forbidden(masks.words, 0);
      for (lidx_t e = b0; e < b1; ++e)
        for (std::size_t v = 0; v < views.size(); ++v) {
          const ColourMapView& view = views[v];
          for (int k = 0; k < view.arity; ++k) {
            const lidx_t t =
                view.targets[static_cast<std::size_t>(e) *
                                 static_cast<std::size_t>(view.arity) +
                             static_cast<std::size_t>(k)];
            if (t == kInvalidLocal) continue;
            const std::uint64_t* m = masks.mask(v, t);
            for (std::size_t w = 0; w < masks.words; ++w)
              forbidden[w] |= m[w];
          }
        }
      for (std::size_t w = 0; w < masks.words && c < 0; ++w) {
        if (forbidden[w] == ~std::uint64_t{0}) continue;
        const int bit = std::countr_one(forbidden[w]);
        c = static_cast<int>(w * 64) + bit;
      }
      if (c < 0) masks.widen();
    }
    out.num_colours = std::max(out.num_colours, c + 1);
    for (lidx_t e = b0; e < b1; ++e) {
      out.colour[static_cast<std::size_t>(e)] = c;
      for (std::size_t v = 0; v < views.size(); ++v) {
        const ColourMapView& view = views[v];
        for (int k = 0; k < view.arity; ++k) {
          const lidx_t t =
              view.targets[static_cast<std::size_t>(e) *
                               static_cast<std::size_t>(view.arity) +
                           static_cast<std::size_t>(k)];
          if (t == kInvalidLocal) continue;
          masks.mask(v, t)[static_cast<std::size_t>(c) / 64] |=
              std::uint64_t{1} << (static_cast<std::size_t>(c) % 64);
        }
      }
    }
  }

  out.classes.resize(static_cast<std::size_t>(out.num_colours));
  for (lidx_t e = 0; e < n; ++e)
    out.classes[static_cast<std::size_t>(out.colour[static_cast<std::size_t>(e)])]
        .push_back(e);
  return out;
}

BlockGraph block_conflict_graph(lidx_t n,
                                std::span<const ColourMapView> views,
                                const Colouring& col) {
  OP2CA_REQUIRE(col.block_elems > 1,
                "block_conflict_graph needs a blocked colouring");
  OP2CA_REQUIRE(static_cast<lidx_t>(col.colour.size()) == n,
                "block_conflict_graph: colouring does not cover the set");
  const lidx_t block = col.block_elems;
  BlockGraph g;
  g.block_elems = block;
  g.num_blocks = n > 0 ? (n + block - 1) / block : 0;
  g.num_colours = col.num_colours;
  g.colour.resize(static_cast<std::size_t>(g.num_blocks));
  for (lidx_t b = 0; b < g.num_blocks; ++b)
    g.colour[static_cast<std::size_t>(b)] =
        col.colour[static_cast<std::size_t>(b) *
                   static_cast<std::size_t>(block)];
  if (g.num_blocks == 0) {
    g.adj_off.assign(1, 0);
    return g;
  }

  // target -> touching blocks, one CSR across all views (view v's targets
  // live at toff[v]). Filled in ascending element order, so each target's
  // entries come out block-sorted and adjacent duplicates collapse.
  std::vector<std::size_t> toff;
  std::size_t targets = 0;
  for (const ColourMapView& v : views) {
    toff.push_back(targets);
    targets += static_cast<std::size_t>(v.num_targets);
  }
  std::vector<std::size_t> cnt(targets + 1, 0);
  auto each_incidence = [&](auto&& fn) {
    for (std::size_t v = 0; v < views.size(); ++v) {
      const ColourMapView& view = views[v];
      for (lidx_t e = 0; e < n; ++e)
        for (int k = 0; k < view.arity; ++k) {
          const lidx_t t =
              view.targets[static_cast<std::size_t>(e) *
                               static_cast<std::size_t>(view.arity) +
                           static_cast<std::size_t>(k)];
          if (t == kInvalidLocal) continue;
          fn(toff[v] + static_cast<std::size_t>(t), e / block);
        }
    }
  };
  each_incidence([&](std::size_t t, lidx_t) { ++cnt[t + 1]; });
  for (std::size_t t = 0; t < targets; ++t) cnt[t + 1] += cnt[t];
  LIdxVec inc(cnt[targets]);
  {
    std::vector<std::size_t> at(cnt.begin(), cnt.end() - 1);
    each_incidence([&](std::size_t t, lidx_t b) { inc[at[t]++] = b; });
  }
  // Dedup each target's (sorted) block run in place.
  std::vector<std::size_t> tend(targets);
  for (std::size_t t = 0; t < targets; ++t) {
    std::size_t w = cnt[t];
    for (std::size_t r = cnt[t]; r < cnt[t + 1]; ++r)
      if (w == cnt[t] || inc[r] != inc[w - 1]) inc[w++] = inc[r];
    tend[t] = w;
  }

  // Per-block neighbour gathering with a last-seen stamp for dedup: walk
  // the block's own incidences and collect every other block sharing one
  // of its targets.
  LIdxVec stamp(static_cast<std::size_t>(g.num_blocks), kInvalidLocal);
  std::vector<LIdxVec> nbr(static_cast<std::size_t>(g.num_blocks));
  std::size_t edges = 0;
  for (lidx_t b = 0; b < g.num_blocks; ++b) {
    const lidx_t e0 = b * block, e1 = std::min<lidx_t>(n, e0 + block);
    LIdxVec& row = nbr[static_cast<std::size_t>(b)];
    for (std::size_t v = 0; v < views.size(); ++v) {
      const ColourMapView& view = views[v];
      for (lidx_t e = e0; e < e1; ++e)
        for (int k = 0; k < view.arity; ++k) {
          const lidx_t t =
              view.targets[static_cast<std::size_t>(e) *
                               static_cast<std::size_t>(view.arity) +
                           static_cast<std::size_t>(k)];
          if (t == kInvalidLocal) continue;
          const std::size_t tt = toff[v] + static_cast<std::size_t>(t);
          for (std::size_t r = cnt[tt]; r < tend[tt]; ++r) {
            const lidx_t b2 = inc[r];
            if (b2 == b || stamp[static_cast<std::size_t>(b2)] == b)
              continue;
            stamp[static_cast<std::size_t>(b2)] = b;
            row.push_back(b2);
          }
        }
    }
    std::sort(row.begin(), row.end());
    edges += row.size();
  }

  g.adj_off.resize(static_cast<std::size_t>(g.num_blocks) + 1);
  g.adj.reserve(edges);
  g.adj_off[0] = 0;
  for (lidx_t b = 0; b < g.num_blocks; ++b) {
    const LIdxVec& row = nbr[static_cast<std::size_t>(b)];
    g.adj.insert(g.adj.end(), row.begin(), row.end());
    g.adj_off[static_cast<std::size_t>(b) + 1] = g.adj.size();
  }
  return g;
}

bool colouring_valid(const Colouring& c, lidx_t n,
                     std::span<const ColourMapView> views) {
  if (static_cast<lidx_t>(c.colour.size()) != n) return false;
  const lidx_t block = std::max<lidx_t>(1, c.block_elems);
  // claimed[v][t] = block that most recently touched target t in the
  // colour class being checked (one pass per colour). The conflict-free
  // unit is the block: a parallel sweep never splits one.
  for (const LIdxVec& cls : c.classes) {
    std::vector<std::vector<lidx_t>> claimed;
    for (const ColourMapView& v : views)
      claimed.emplace_back(static_cast<std::size_t>(v.num_targets),
                           kInvalidLocal);
    for (lidx_t e : cls) {
      const lidx_t blk = e / block;
      for (std::size_t v = 0; v < views.size(); ++v) {
        const ColourMapView& view = views[v];
        for (int k = 0; k < view.arity; ++k) {
          const lidx_t t =
              view.targets[static_cast<std::size_t>(e) *
                               static_cast<std::size_t>(view.arity) +
                           static_cast<std::size_t>(k)];
          if (t == kInvalidLocal) continue;
          lidx_t& owner = claimed[v][static_cast<std::size_t>(t)];
          if (owner != kInvalidLocal && owner != blk) return false;
          owner = blk;
        }
      }
    }
  }
  return true;
}

}  // namespace op2ca::mesh
