// Global (pre-partitioning) mesh description: sets, maps and dats, exactly
// mirroring OP2's op_decl_set / op_decl_map / op_decl_dat. A MeshDef is
// immutable once built and shared read-only by all simulated ranks; the
// partitioner and halo builder consume it to produce per-rank local views.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "op2ca/util/error.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::mesh {

/// Identifier of a set/map/dat inside one MeshDef.
using set_id = int;
using map_id = int;
using dat_id = int;

struct SetDef {
  std::string name;
  gidx_t size = 0;
};

/// Explicit connectivity M : from -> to^arity; `targets` is row-major,
/// targets[e*arity + k] is the k-th target of element e.
struct MapDef {
  std::string name;
  set_id from = -1;
  set_id to = -1;
  int arity = 0;
  GIdxVec targets;
};

/// Data defined on a set, `dim` doubles per element.
struct DatDef {
  std::string name;
  set_id set = -1;
  int dim = 0;
  std::vector<double> data;  ///< size() == set_size * dim.
};

class MeshDef {
public:
  set_id add_set(const std::string& name, gidx_t size);
  map_id add_map(const std::string& name, set_id from, set_id to, int arity,
                 GIdxVec targets);
  /// Declares a dat with explicit initial data.
  dat_id add_dat(const std::string& name, set_id set, int dim,
                 std::vector<double> data);
  /// Declares a zero-initialised dat.
  dat_id add_dat(const std::string& name, set_id set, int dim);

  const SetDef& set(set_id id) const;
  const MapDef& map(map_id id) const;
  const DatDef& dat(dat_id id) const;
  DatDef& mutable_dat(dat_id id);

  int num_sets() const { return static_cast<int>(sets_.size()); }
  int num_maps() const { return static_cast<int>(maps_.size()); }
  int num_dats() const { return static_cast<int>(dats_.size()); }

  std::optional<set_id> find_set(const std::string& name) const;
  std::optional<map_id> find_map(const std::string& name) const;
  std::optional<dat_id> find_dat(const std::string& name) const;

  /// Set carrying geometric coordinates (used by RIB / kway seeding);
  /// `coords_dat` must have dim 2 or 3 and live on `coords_set`.
  void set_coords(set_id set, dat_id dat);
  bool has_coords() const { return coords_dat_ >= 0; }
  set_id coords_set() const { return coords_set_; }
  dat_id coords_dat() const { return coords_dat_; }

  /// Total number of mesh elements across all sets.
  gidx_t total_elements() const;

private:
  std::vector<SetDef> sets_;
  std::vector<MapDef> maps_;
  std::vector<DatDef> dats_;
  set_id coords_set_ = -1;
  dat_id coords_dat_ = -1;
};

}  // namespace op2ca::mesh
