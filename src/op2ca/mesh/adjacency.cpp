#include "op2ca/mesh/adjacency.hpp"

#include <algorithm>

namespace op2ca::mesh {

Csr reverse_map(const MeshDef& mesh, map_id m) {
  const MapDef& mp = mesh.map(m);
  const gidx_t nfrom = mesh.set(mp.from).size;
  const gidx_t nto = mesh.set(mp.to).size;

  Csr csr;
  csr.offsets.assign(static_cast<std::size_t>(nto) + 1, 0);
  for (gidx_t t : mp.targets)
    ++csr.offsets[static_cast<std::size_t>(t) + 1];
  for (std::size_t i = 1; i < csr.offsets.size(); ++i)
    csr.offsets[i] += csr.offsets[i - 1];

  csr.adj.resize(mp.targets.size());
  std::vector<gidx_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (gidx_t e = 0; e < nfrom; ++e) {
    for (int k = 0; k < mp.arity; ++k) {
      const gidx_t t = mp.targets[static_cast<std::size_t>(e * mp.arity + k)];
      csr.adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(t)]++)] = e;
    }
  }
  return csr;
}

Csr set_graph(const MeshDef& mesh, set_id s) {
  const gidx_t n = mesh.set(s).size;
  std::vector<GIdxVec> nbrs(static_cast<std::size_t>(n));

  for (map_id m = 0; m < mesh.num_maps(); ++m) {
    const MapDef& mp = mesh.map(m);
    if (mp.to != s) continue;
    const gidx_t nfrom = mesh.set(mp.from).size;
    for (gidx_t e = 0; e < nfrom; ++e) {
      const auto base = static_cast<std::size_t>(e * mp.arity);
      for (int a = 0; a < mp.arity; ++a) {
        for (int b = a + 1; b < mp.arity; ++b) {
          const gidx_t u = mp.targets[base + static_cast<std::size_t>(a)];
          const gidx_t v = mp.targets[base + static_cast<std::size_t>(b)];
          if (u == v) continue;
          nbrs[static_cast<std::size_t>(u)].push_back(v);
          nbrs[static_cast<std::size_t>(v)].push_back(u);
        }
      }
    }
  }

  Csr csr;
  csr.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (gidx_t i = 0; i < n; ++i) {
    auto& row = nbrs[static_cast<std::size_t>(i)];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    csr.offsets[static_cast<std::size_t>(i) + 1] =
        csr.offsets[static_cast<std::size_t>(i)] +
        static_cast<gidx_t>(row.size());
  }
  csr.adj.reserve(static_cast<std::size_t>(csr.offsets.back()));
  for (auto& row : nbrs)
    csr.adj.insert(csr.adj.end(), row.begin(), row.end());
  return csr;
}

std::vector<double> derive_coords(const MeshDef& mesh, set_id s) {
  OP2CA_REQUIRE(mesh.has_coords(), "MeshDef has no coords dat");
  const DatDef& coords = mesh.dat(mesh.coords_dat());
  const int dim = coords.dim;
  if (s == mesh.coords_set()) return coords.data;

  const gidx_t n = mesh.set(s).size;
  std::vector<double> out(static_cast<std::size_t>(n * dim), 0.0);
  std::vector<int> counts(static_cast<std::size_t>(n), 0);

  // Forward: a map from `s` directly onto the coords set.
  for (map_id m = 0; m < mesh.num_maps(); ++m) {
    const MapDef& mp = mesh.map(m);
    if (mp.from != s || mp.to != mesh.coords_set()) continue;
    for (gidx_t e = 0; e < n; ++e) {
      for (int k = 0; k < mp.arity; ++k) {
        const gidx_t t =
            mp.targets[static_cast<std::size_t>(e * mp.arity + k)];
        for (int d = 0; d < dim; ++d)
          out[static_cast<std::size_t>(e * dim + d)] +=
              coords.data[static_cast<std::size_t>(t * dim + d)];
        ++counts[static_cast<std::size_t>(e)];
      }
    }
  }

  bool any = false;
  for (gidx_t e = 0; e < n; ++e) {
    const int c = counts[static_cast<std::size_t>(e)];
    if (c > 0) {
      any = true;
      for (int d = 0; d < dim; ++d)
        out[static_cast<std::size_t>(e * dim + d)] /= c;
    }
  }
  if (any) return out;

  // Reverse: a map from the coords set onto `s` (e.g. edges -> cells when
  // only edge geometry exists). Average the sources touching each target.
  for (map_id m = 0; m < mesh.num_maps(); ++m) {
    const MapDef& mp = mesh.map(m);
    if (mp.to != s || mp.from != mesh.coords_set()) continue;
    const gidx_t nfrom = mesh.set(mp.from).size;
    for (gidx_t e = 0; e < nfrom; ++e) {
      for (int k = 0; k < mp.arity; ++k) {
        const gidx_t t =
            mp.targets[static_cast<std::size_t>(e * mp.arity + k)];
        for (int d = 0; d < dim; ++d)
          out[static_cast<std::size_t>(t * dim + d)] +=
              coords.data[static_cast<std::size_t>(e * dim + d)];
        ++counts[static_cast<std::size_t>(t)];
      }
    }
  }
  for (gidx_t e = 0; e < n; ++e) {
    const int c = counts[static_cast<std::size_t>(e)];
    if (c > 0) {
      any = true;
      for (int d = 0; d < dim; ++d)
        out[static_cast<std::size_t>(e * dim + d)] /= c;
    }
  }
  OP2CA_REQUIRE(any, "derive_coords: no geometric path from set '" +
                         mesh.set(s).name + "' to the coords set");
  return out;
}

}  // namespace op2ca::mesh
