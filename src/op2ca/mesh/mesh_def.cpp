#include "op2ca/mesh/mesh_def.hpp"

namespace op2ca::mesh {

set_id MeshDef::add_set(const std::string& name, gidx_t size) {
  OP2CA_REQUIRE(size >= 0, "Set size must be non-negative: " + name);
  OP2CA_REQUIRE(!find_set(name), "Duplicate set name: " + name);
  sets_.push_back(SetDef{name, size});
  return static_cast<set_id>(sets_.size() - 1);
}

map_id MeshDef::add_map(const std::string& name, set_id from, set_id to,
                        int arity, GIdxVec targets) {
  OP2CA_REQUIRE(from >= 0 && from < num_sets(), "Map from-set out of range");
  OP2CA_REQUIRE(to >= 0 && to < num_sets(), "Map to-set out of range");
  OP2CA_REQUIRE(arity > 0, "Map arity must be positive: " + name);
  OP2CA_REQUIRE(!find_map(name), "Duplicate map name: " + name);
  const gidx_t expected =
      sets_[static_cast<std::size_t>(from)].size * arity;
  OP2CA_REQUIRE(static_cast<gidx_t>(targets.size()) == expected,
                "Map " + name + " target array size mismatch");
  const gidx_t to_size = sets_[static_cast<std::size_t>(to)].size;
  for (gidx_t t : targets)
    OP2CA_REQUIRE(t >= 0 && t < to_size,
                  "Map " + name + " target index out of range");
  maps_.push_back(MapDef{name, from, to, arity, std::move(targets)});
  return static_cast<map_id>(maps_.size() - 1);
}

dat_id MeshDef::add_dat(const std::string& name, set_id set, int dim,
                        std::vector<double> data) {
  OP2CA_REQUIRE(set >= 0 && set < num_sets(), "Dat set out of range");
  OP2CA_REQUIRE(dim > 0, "Dat dim must be positive: " + name);
  OP2CA_REQUIRE(!find_dat(name), "Duplicate dat name: " + name);
  const gidx_t expected = sets_[static_cast<std::size_t>(set)].size * dim;
  OP2CA_REQUIRE(static_cast<gidx_t>(data.size()) == expected,
                "Dat " + name + " data size mismatch");
  dats_.push_back(DatDef{name, set, dim, std::move(data)});
  return static_cast<dat_id>(dats_.size() - 1);
}

dat_id MeshDef::add_dat(const std::string& name, set_id set, int dim) {
  OP2CA_REQUIRE(set >= 0 && set < num_sets(), "Dat set out of range");
  const auto n = static_cast<std::size_t>(
      sets_[static_cast<std::size_t>(set)].size * dim);
  return add_dat(name, set, dim, std::vector<double>(n, 0.0));
}

const SetDef& MeshDef::set(set_id id) const {
  OP2CA_REQUIRE(id >= 0 && id < num_sets(), "set id out of range");
  return sets_[static_cast<std::size_t>(id)];
}

const MapDef& MeshDef::map(map_id id) const {
  OP2CA_REQUIRE(id >= 0 && id < num_maps(), "map id out of range");
  return maps_[static_cast<std::size_t>(id)];
}

const DatDef& MeshDef::dat(dat_id id) const {
  OP2CA_REQUIRE(id >= 0 && id < num_dats(), "dat id out of range");
  return dats_[static_cast<std::size_t>(id)];
}

DatDef& MeshDef::mutable_dat(dat_id id) {
  OP2CA_REQUIRE(id >= 0 && id < num_dats(), "dat id out of range");
  return dats_[static_cast<std::size_t>(id)];
}

std::optional<set_id> MeshDef::find_set(const std::string& name) const {
  for (int i = 0; i < num_sets(); ++i)
    if (sets_[static_cast<std::size_t>(i)].name == name) return i;
  return std::nullopt;
}

std::optional<map_id> MeshDef::find_map(const std::string& name) const {
  for (int i = 0; i < num_maps(); ++i)
    if (maps_[static_cast<std::size_t>(i)].name == name) return i;
  return std::nullopt;
}

std::optional<dat_id> MeshDef::find_dat(const std::string& name) const {
  for (int i = 0; i < num_dats(); ++i)
    if (dats_[static_cast<std::size_t>(i)].name == name) return i;
  return std::nullopt;
}

void MeshDef::set_coords(set_id set, dat_id dat) {
  OP2CA_REQUIRE(set >= 0 && set < num_sets(), "coords set out of range");
  OP2CA_REQUIRE(dat >= 0 && dat < num_dats(), "coords dat out of range");
  const DatDef& d = this->dat(dat);
  OP2CA_REQUIRE(d.set == set, "coords dat must live on coords set");
  OP2CA_REQUIRE(d.dim == 2 || d.dim == 3, "coords dat must have dim 2 or 3");
  coords_set_ = set;
  coords_dat_ = dat;
}

gidx_t MeshDef::total_elements() const {
  gidx_t total = 0;
  for (const auto& s : sets_) total += s.size;
  return total;
}

}  // namespace op2ca::mesh
