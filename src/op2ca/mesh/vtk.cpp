#include "op2ca/mesh/vtk.hpp"

#include <fstream>

#include "op2ca/util/error.hpp"

namespace op2ca::mesh {
namespace {

int vtk_cell_type(int arity) {
  switch (arity) {
    case 1: return 1;   // VTK_VERTEX
    case 2: return 3;   // VTK_LINE
    case 3: return 5;   // VTK_TRIANGLE
    case 4: return 9;   // VTK_QUAD
    case 8: return 12;  // VTK_HEXAHEDRON
    default:
      raise("write_vtk: unsupported element arity " +
            std::to_string(arity));
  }
}

}  // namespace

void write_vtk(const std::string& path, const MeshDef& mesh,
               map_id elements_to_points,
               const std::vector<VtkField>& point_fields) {
  OP2CA_REQUIRE(mesh.has_coords(), "write_vtk: mesh has no coordinates");
  const MapDef& mp = mesh.map(elements_to_points);
  OP2CA_REQUIRE(mp.to == mesh.coords_set(),
                "write_vtk: map must target the coordinate set");
  const DatDef& coords = mesh.dat(mesh.coords_dat());
  const gidx_t npoints = mesh.set(mesh.coords_set()).size;
  const gidx_t ncells = mesh.set(mp.from).size;
  const int cell_type = vtk_cell_type(mp.arity);

  std::ofstream os(path);
  OP2CA_REQUIRE(os.good(), "write_vtk: cannot open " + path);
  os << "# vtk DataFile Version 3.0\n"
     << "op2ca snapshot\nASCII\nDATASET UNSTRUCTURED_GRID\n";

  os << "POINTS " << npoints << " double\n";
  for (gidx_t i = 0; i < npoints; ++i) {
    for (int d = 0; d < 3; ++d) {
      const double v =
          d < coords.dim
              ? coords.data[static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(coords.dim) +
                            static_cast<std::size_t>(d)]
              : 0.0;
      os << v << (d == 2 ? '\n' : ' ');
    }
  }

  os << "CELLS " << ncells << ' '
     << ncells * (static_cast<gidx_t>(mp.arity) + 1) << '\n';
  for (gidx_t e = 0; e < ncells; ++e) {
    os << mp.arity;
    for (int k = 0; k < mp.arity; ++k)
      os << ' '
         << mp.targets[static_cast<std::size_t>(e) *
                           static_cast<std::size_t>(mp.arity) +
                       static_cast<std::size_t>(k)];
    os << '\n';
  }
  os << "CELL_TYPES " << ncells << '\n';
  for (gidx_t e = 0; e < ncells; ++e) os << cell_type << '\n';

  if (!point_fields.empty()) {
    os << "POINT_DATA " << npoints << '\n';
    for (const VtkField& f : point_fields) {
      OP2CA_REQUIRE(npoints > 0 && f.values.size() %
                                           static_cast<std::size_t>(
                                               npoints) ==
                                       0,
                    "write_vtk: field '" + f.name +
                        "' size is not a multiple of the point count");
      const int dim =
          static_cast<int>(f.values.size() /
                           static_cast<std::size_t>(npoints));
      if (dim == 1) {
        os << "SCALARS " << f.name << " double 1\nLOOKUP_TABLE default\n";
        for (gidx_t i = 0; i < npoints; ++i)
          os << f.values[static_cast<std::size_t>(i)] << '\n';
      } else if (dim == 3) {
        os << "VECTORS " << f.name << " double\n";
        for (gidx_t i = 0; i < npoints; ++i)
          os << f.values[static_cast<std::size_t>(3 * i)] << ' '
             << f.values[static_cast<std::size_t>(3 * i + 1)] << ' '
             << f.values[static_cast<std::size_t>(3 * i + 2)] << '\n';
      } else {
        os << "FIELD fields 1\n"
           << f.name << ' ' << dim << ' ' << npoints << " double\n";
        for (gidx_t i = 0; i < npoints; ++i) {
          for (int d = 0; d < dim; ++d)
            os << f.values[static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(dim) +
                           static_cast<std::size_t>(d)]
               << (d + 1 == dim ? '\n' : ' ');
        }
      }
    }
  }
  OP2CA_REQUIRE(os.good(), "write_vtk: write failed for " + path);
}

}  // namespace op2ca::mesh
