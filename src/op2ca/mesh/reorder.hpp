// Cache-aware intra-layer element reordering (the locality layer).
//
// The halo plan fixes a coarse structure per rank and set — owned
// elements sorted by decreasing inward distance, then import-exec and
// import-nonexec layers — but leaves the order *within* those segments
// at global-id order, i.e. whatever the mesh file happened to use.
// Indirect kernels then gather and scatter through maps whose targets
// hop arbitrarily through memory, and the hot path is bound by cache
// misses rather than compute (Sulyok et al., "Locality Optimized
// Unstructured Mesh Algorithms on GPUs").
//
// This header provides the ordering algorithms and the permutation
// plumbing; halo/reorder.hpp applies them to a built HaloPlan without
// crossing any layer boundary:
//
//  * rcm_order — Reverse Cuthill–McKee over the loop-conflict adjacency
//    (elements adjacent when a map entry joins them), the classic
//    bandwidth-minimising order for gather/scatter locality.
//  * sfc_order — Morton space-filling-curve order over element
//    coordinates, which clusters geometric neighbours for sets with a
//    geometric embedding.
//
// Both are *block-constrained*: they permute only within caller-given
// [begin, end) blocks, so layer boundaries (and the din-descending core
// prefix property the CA executor's shrinking cores depend on) survive
// by construction.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "op2ca/mesh/mesh_def.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::mesh {

enum class ReorderKind {
  None,  ///< keep partition order (bitwise-legacy).
  RCM,   ///< Reverse Cuthill–McKee over the conflict adjacency.
  SFC,   ///< Morton space-filling curve over (derived) coordinates.
  Auto,  ///< SFC when the set has a geometric path, else RCM.
};

const char* reorder_kind_name(ReorderKind k);

/// Per-World reordering policy (WorldConfig::reorder). Off by default:
/// with kind == None and no per-set overrides the runtime is
/// bitwise-identical to the un-reordered build.
struct ReorderConfig {
  ReorderKind kind = ReorderKind::None;  ///< default for every set.
  /// Per-set overrides by set name (may also switch a set *off*).
  std::map<std::string, ReorderKind> per_set;
  /// Elements per colour block for the locality-aware colour sweep
  /// (core/dispatch): conflicts are resolved between contiguous blocks
  /// of this many elements, so each colour class becomes a union of
  /// cache-friendly runs instead of a strided scatter. Only consulted
  /// when reordering is enabled; <= 1 keeps per-element colouring.
  lidx_t colour_block = 256;

  bool enabled() const;
  ReorderKind for_set(const std::string& set_name) const;
};

/// A local-element permutation: new_of_old[i] is the new index of the
/// element previously at i, old_of_new its inverse. Empty vectors mean
/// identity (the set was not reordered).
struct Permutation {
  LIdxVec new_of_old;
  LIdxVec old_of_new;

  lidx_t size() const { return static_cast<lidx_t>(new_of_old.size()); }
  bool empty() const { return new_of_old.empty(); }
  bool is_identity() const;
};

/// Builds the inverse and validates bijectivity; raises on a non-permutation.
Permutation make_permutation(LIdxVec new_of_old);
/// Property-test predicate: both directions present, mutually inverse,
/// and each a bijection on [0, size).
bool permutation_valid(const Permutation& p);

/// Half-open [begin, end) index blocks a reordering may not cross.
using BlockVec = std::vector<std::pair<lidx_t, lidx_t>>;
/// True iff p maps every block onto itself (layer boundaries preserved).
bool permutation_preserves_blocks(const Permutation& p,
                                  const BlockVec& blocks);

/// Symmetric local adjacency in CSR form (lidx_t index space).
struct LocalCsr {
  std::vector<std::size_t> offsets;  ///< size = num_rows + 1.
  LIdxVec adj;

  lidx_t num_rows() const {
    return static_cast<lidx_t>(offsets.empty() ? 0 : offsets.size() - 1);
  }
  std::span<const lidx_t> row(lidx_t e) const {
    const std::size_t b = offsets[static_cast<std::size_t>(e)];
    return {adj.data() + b, offsets[static_cast<std::size_t>(e) + 1] - b};
  }
};

/// Builds a CSR from an (unsorted, possibly duplicated) directed edge
/// list over [0, n); callers emit both directions for symmetry.
/// Self-loops and duplicates are dropped; rows come out sorted.
LocalCsr csr_from_edges(lidx_t n,
                        std::vector<std::pair<lidx_t, lidx_t>> edges);

/// Reverse Cuthill–McKee within each block: per connected component a
/// BFS from a minimum-degree seed, neighbours visited in ascending
/// (degree, index) order, then the visit order reversed. Adjacency
/// entries leaving a block are ignored, so blocks permute independently.
Permutation rcm_order(const LocalCsr& adj, const BlockVec& blocks);

/// Morton (Z-order) space-filling-curve order within each block.
/// `coords` is row-major n x dim (dim 2 or 3); each block's bounding box
/// is quantised to a 2^kSfcBits grid and elements sorted by interleaved
/// key (ties by original index — the order is deterministic).
Permutation sfc_order(std::span<const double> coords, int dim, lidx_t n,
                      const BlockVec& blocks);

/// Applies p to row-major data: out[new * dim + c] = in[old * dim + c].
template <typename T>
std::vector<T> permute_rows(const Permutation& p, int dim,
                            const std::vector<T>& in) {
  if (p.empty()) return in;
  std::vector<T> out(in.size());
  const std::size_t d = static_cast<std::size_t>(dim);
  for (lidx_t i = 0; i < p.size(); ++i) {
    const std::size_t src = static_cast<std::size_t>(i) * d;
    const std::size_t dst =
        static_cast<std::size_t>(p.new_of_old[static_cast<std::size_t>(i)]) *
        d;
    for (std::size_t c = 0; c < d; ++c) out[dst + c] = in[src + c];
  }
  return out;
}

/// Inverse of permute_rows: recovers the original row order.
template <typename T>
std::vector<T> unpermute_rows(const Permutation& p, int dim,
                              const std::vector<T>& in) {
  if (p.empty()) return in;
  std::vector<T> out(in.size());
  const std::size_t d = static_cast<std::size_t>(dim);
  for (lidx_t i = 0; i < p.size(); ++i) {
    const std::size_t src =
        static_cast<std::size_t>(p.new_of_old[static_cast<std::size_t>(i)]) *
        d;
    const std::size_t dst = static_cast<std::size_t>(i) * d;
    for (std::size_t c = 0; c < d; ++c) out[dst + c] = in[src + c];
  }
  return out;
}

/// Mesh-quality proxies of one localized map, walked in iteration order:
///  * gather_span — mean |target(e, k) - target(e-1, k)| between
///    consecutive iterations (how far each gather stream jumps, in
///    elements; lower = more cache-line reuse between iterations).
///  * reuse_gap — mean number of iterations between successive touches
///    of the same target (a reuse-distance proxy: lower = the second
///    touch more likely still cached).
struct OrderingQuality {
  double gather_span = 0.0;
  double reuse_gap = 0.0;
};

OrderingQuality ordering_quality(const lidx_t* targets, int arity,
                                 lidx_t num_elements, lidx_t num_targets);

/// Deterministically scrambles every set's global numbering (maps, dats
/// and coords rewritten consistently). Bench/test utility: hex3d comes
/// out of the generator in cache-friendly lexicographic order, which no
/// real mesh file guarantees; scrambling reproduces the arbitrary-order
/// baseline the reordering literature starts from. `perms_out`, when
/// non-null, receives per-set new_of_old global permutations.
MeshDef scramble_mesh(const MeshDef& in, std::uint64_t seed,
                      std::vector<GIdxVec>* perms_out = nullptr);

}  // namespace op2ca::mesh
