// Multigrid hierarchy over hex3d meshes, as used by MG-CFD: each level is
// a coarsened node/edge grid living in the same MeshDef, with arity-1
// inter-grid maps (fine->coarse restriction target, coarse->fine
// injection point).
#pragma once

#include <vector>

#include "op2ca/mesh/mesh_def.hpp"

namespace op2ca::mesh {

struct MgLevel {
  set_id nodes = -1, edges = -1, bnodes = -1;
  map_id e2n = -1, b2n = -1;
  gidx_t nx = 0, ny = 0, nz = 0;  ///< cells per dimension at this level.
};

struct MultigridHex {
  MeshDef mesh;
  std::vector<MgLevel> levels;         ///< levels[0] is the finest.
  std::vector<map_id> restrict_maps;   ///< [l]: level-l nodes -> level-(l+1).
  std::vector<map_id> prolong_maps;    ///< [l]: level-(l+1) nodes -> level-l.
  dat_id coords = -1;                  ///< level-0 node coordinates.
};

/// Builds `num_levels` levels starting from an (nx x ny x nz)-cell fine
/// grid, halving each dimension per level (floored at 1 cell).
MultigridHex make_multigrid_hex(gidx_t nx, gidx_t ny, gidx_t nz,
                                int num_levels);

}  // namespace op2ca::mesh
