// Annular-sector ("rotor passage") mesh generator — the Rotor 37-like
// geometry used by the Hydra experiments. A structured hex grid in
// cylindrical coordinates (radial x pitchwise x axial) converted to
// unstructured sets/maps, with:
//   * pedges — pitch-periodic node pairs (Hydra's periodic-boundary set),
//   * bnd    — hub/casing/inlet/outlet boundary markers,
//   * cbnd   — centreline boundary markers (hub-inlet circle).
#pragma once

#include "op2ca/mesh/mesh_def.hpp"

namespace op2ca::mesh {

struct Annulus {
  MeshDef mesh;
  set_id nodes = -1, edges = -1, cells = -1;
  set_id pedges = -1, bnd = -1, cbnd = -1;
  map_id e2n = -1;   ///< edge -> 2 nodes.
  map_id e2c = -1;   ///< edge -> 2 cells (boundary edges repeat a cell).
  map_id pe2n = -1;  ///< periodic pair -> (node at theta=0, node at theta=max).
  map_id b2n = -1;   ///< boundary marker -> 1 node.
  map_id cb2n = -1;  ///< centreline marker -> 1 node.
  dat_id coords = -1;  ///< node coordinates, dim 3 (x, y, z).

  gidx_t nr = 0, nt = 0, nz = 0;  ///< cells per dimension.
};

/// Builds an annular wedge with `nr` radial, `nt` pitchwise and `nz` axial
/// cells between hub radius 0.5 and casing radius 1.0, pitch angle 20 deg,
/// unit axial length.
Annulus make_annulus(gidx_t nr, gidx_t nt, gidx_t nz);

/// Chooses (nr, nt, nz) for ~target_nodes with rotor-passage-like aspect
/// (axial longest, radial shortest).
void pick_annulus_dims(gidx_t target_nodes, gidx_t* nr, gidx_t* nt,
                       gidx_t* nz);

}  // namespace op2ca::mesh
