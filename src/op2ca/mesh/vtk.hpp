// Legacy-VTK (ASCII) snapshot writer: dumps a mesh (its coordinate set
// plus one element-to-points map) and point-data fields for inspection
// in ParaView/VisIt. Used by the examples to visualise solver output.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "op2ca/mesh/mesh_def.hpp"

namespace op2ca::mesh {

/// A named point-data field: values.size() must be a multiple of the
/// coordinate-set size (the multiple becomes the component count).
struct VtkField {
  std::string name;
  std::vector<double> values;
};

/// Writes `mesh` as an unstructured grid: points from the coords dat,
/// cells from `elements_to_points` (arity 1 = vertices, 2 = lines,
/// 4 = quads, 8 = hexahedra), and the given point fields.
void write_vtk(const std::string& path, const MeshDef& mesh,
               map_id elements_to_points,
               const std::vector<VtkField>& point_fields);

}  // namespace op2ca::mesh
