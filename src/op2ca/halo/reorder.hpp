// Applies the locality reordering (mesh/reorder) to a built HaloPlan.
//
// Every rank's local numbering of a reordered set is permuted *within*
// the structural blocks the layered layout fixes:
//
//   [ owned, one block per inward-distance shell 1..depth plus one for
//     everything deeper | each import-exec layer | each import-nonexec
//     layer ]
//
// so core_count(), exec_layer() and nonexec_layer() keep meaning exactly
// what they meant, and the CA executor's shrinking cores stay index
// prefixes. Inward distances deeper than the plan's depth are
// interchangeable (no executor ever shrinks past the plan depth — chains
// require analysis.required_depth <= plan.depth), so they merge into a
// single freely-permutable interior block; their stored owned_din is
// clamped to depth + 1 to keep the din-descending invariant.
//
// The permutation is threaded through every plan structure: layouts
// (local_to_global, owned_din), local maps (rows of maps *from* the set
// permuted, targets of maps *onto* it rewritten), and all four
// neighbour-list tables. Export lists mirror a neighbour's import lists
// positionally, so after index rewriting each (exporter, importer) list
// pair is re-sorted jointly into ascending exporter order — the packing
// gathers then walk ascending addresses, which is what lets the compiler
// vectorise them.
//
// Everything downstream (per-rank dats, LoopExchange / GroupedPlan
// caches, colourings, the chain inspector's slice tables) is built
// lazily from the plan *after* the World constructor runs this, so no
// cache ever observes the pre-permutation numbering.
#pragma once

#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/mesh/reorder.hpp"

namespace op2ca::halo {

struct ReorderResult {
  /// perms[rank][set]; an empty permutation means the set was left in
  /// partition order on that rank.
  std::vector<std::vector<mesh::Permutation>> perms;
  /// Resolved ordering per set (Auto collapsed to RCM or SFC).
  std::vector<mesh::ReorderKind> set_kind;
  int sets_reordered = 0;  ///< (rank, set) pairs actually permuted.

  bool any() const { return sets_reordered > 0; }
};

/// Reorders `plan` in place per `cfg`. Requires local maps (the conflict
/// adjacency comes from them). A disabled config returns an empty result
/// and leaves the plan untouched.
ReorderResult apply_reorder(const mesh::MeshDef& mesh,
                            const mesh::ReorderConfig& cfg, HaloPlan* plan);

/// The blocks of `lay` that apply_reorder permutes within, with inward
/// distances clamped at `depth` + 1 (exposed for the property tests).
mesh::BlockVec reorder_blocks(const SetLayout& lay, int depth);

}  // namespace op2ca::halo
