// Halo plan construction.
//
// Per rank, a layered classification BFS over the global mesh assigns
// every element reachable from the owned region a class:
//
//   owned            -- partition assignment says so
//   exec layer k     -- foreign element whose forward map targets reach
//                       the region E_{k-1}; executing it redundantly
//                       updates data the rank needs (paper's ieh level k)
//   nonexec layer k  -- read-only fringe: map target of an owned (k = 1)
//                       or layer-k exec element, outside the region
//                       (paper's inh level k)
//
// E_k = owned u exec(<=k) u nonexec(<=k). A nonexec element later found
// to map into the region is promoted to exec at that layer (possible for
// sets that are both map sources and targets, e.g. cells).
//
// Owned elements are ordered by decreasing inward distance din (BFS from
// the partition boundary over symmetric adjacency), so shrinking cores
// are prefixes. Imports are ordered by (layer, global id); export lists
// on the owner mirror the importer's order exactly.
#include <algorithm>
#include <unordered_map>

#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/halo/renumber.hpp"
#include "op2ca/mesh/adjacency.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/log.hpp"

namespace op2ca::halo {
namespace {

/// Classification code: 0 = owned, +k = exec layer k, -k = nonexec layer k.
using ClsMap = std::unordered_map<gidx_t, int>;

/// Elements promoted from nonexec layer k to a deeper exec layer. They
/// keep an alias entry in the nonexec import/export lists at their
/// original layer k: iterations of layer k read them, so a level-k halo
/// exchange must still deliver their values even though their local slot
/// lives in the exec segment. (Arises when a set is both map source and
/// target, e.g. multigrid nodes reached first as a read fringe and later
/// as redundant work.)
struct Promotion {
  mesh::set_id set;
  gidx_t gid;
  int read_layer;  ///< original nonexec layer.
};

struct Frontier {
  std::vector<std::pair<mesh::set_id, gidx_t>> elems;
};

struct GlobalContext {
  const mesh::MeshDef* mesh;
  const partition::Partition* part;
  std::vector<mesh::Csr> reverse;                 ///< per map id.
  std::vector<std::vector<GIdxVec>> owned;        ///< [rank][set] gids.
  /// owned_local_idx[set][gid] = local index on the owning rank (filled
  /// as each rank's layout is finalized; used for export registration).
  std::vector<LIdxVec> owned_local_idx;
  /// Per-set map indices, so the per-element BFS loops do not scan every
  /// map of the mesh (the builder's hottest paths).
  std::vector<std::vector<mesh::map_id>> maps_from;  ///< [set].
  std::vector<std::vector<mesh::map_id>> maps_to;    ///< [set].
};

/// Walks one rank's classification BFS up to `depth` layers. Appends any
/// nonexec-to-exec promotions to `promotions`.
std::vector<ClsMap> classify_rank(const GlobalContext& ctx, rank_t r,
                                  int depth,
                                  std::vector<Promotion>* promotions) {
  const mesh::MeshDef& mesh = *ctx.mesh;
  const int nsets = mesh.num_sets();
  std::vector<ClsMap> cls(static_cast<std::size_t>(nsets));

  Frontier frontier;
  for (mesh::set_id s = 0; s < nsets; ++s) {
    for (gidx_t g : ctx.owned[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(s)]) {
      cls[static_cast<std::size_t>(s)].emplace(g, 0);
      frontier.elems.emplace_back(s, g);
    }
  }

  for (int layer = 1; layer <= depth; ++layer) {
    Frontier next;

    // Phase 1: exec discovery. Any unclassified (or nonexec) element with
    // a forward map target in the frontier's region joins exec layer
    // `layer`. Reverse incidence of frontier elements enumerates exactly
    // those candidates.
    std::vector<std::pair<mesh::set_id, gidx_t>> new_exec;
    for (const auto& [ts, tg] : frontier.elems) {
      for (mesh::map_id m : ctx.maps_to[static_cast<std::size_t>(ts)]) {
        const mesh::MapDef& mp = mesh.map(m);
        for (gidx_t f : ctx.reverse[static_cast<std::size_t>(m)].row(tg)) {
          auto& fc = cls[static_cast<std::size_t>(mp.from)];
          auto it = fc.find(f);
          if (it == fc.end()) {
            fc.emplace(f, layer);
            new_exec.emplace_back(mp.from, f);
          } else if (it->second < 0) {
            // Promote nonexec fringe element to exec at this layer,
            // remembering its original read layer for list aliasing.
            promotions->push_back(Promotion{mp.from, f, -it->second});
            it->second = layer;
            new_exec.emplace_back(mp.from, f);
          }
        }
      }
    }

    // Phase 2: nonexec fringe — unclassified targets of the new exec
    // elements (and, at layer 1, of all owned from-elements).
    auto add_targets_of = [&](mesh::set_id fs, gidx_t f) {
      for (mesh::map_id m : ctx.maps_from[static_cast<std::size_t>(fs)]) {
        const mesh::MapDef& mp = mesh.map(m);
        for (int k = 0; k < mp.arity; ++k) {
          const gidx_t t =
              mp.targets[static_cast<std::size_t>(f * mp.arity + k)];
          auto& tc = cls[static_cast<std::size_t>(mp.to)];
          if (tc.find(t) == tc.end()) {
            tc.emplace(t, -layer);
            next.elems.emplace_back(mp.to, t);
          }
        }
      }
    };
    if (layer == 1) {
      for (mesh::set_id s = 0; s < nsets; ++s)
        for (gidx_t g : ctx.owned[static_cast<std::size_t>(r)]
                            [static_cast<std::size_t>(s)])
          add_targets_of(s, g);
    }
    for (const auto& [fs, f] : new_exec) add_targets_of(fs, f);

    for (const auto& e : new_exec) next.elems.push_back(e);
    frontier = std::move(next);
  }

  return cls;
}

/// Inward distances of one rank's owned elements, all sets jointly: BFS
/// from the partition boundary over the bipartite element graph where one
/// map hop (source <-> target, either direction) is distance 1. These are
/// the units the CA inspector's core-shrink arithmetic uses: an indirect
/// access moves exactly one hop, a direct access zero.
std::vector<std::unordered_map<gidx_t, int>> compute_din_all(
    const GlobalContext& ctx, rank_t r) {
  const mesh::MeshDef& mesh = *ctx.mesh;
  const partition::Partition& part = *ctx.part;
  const int nsets = mesh.num_sets();

  // Symmetric neighbour visitor across all maps touching an element.
  auto for_each_neighbor = [&](mesh::set_id es, gidx_t eg, auto&& fn) {
    for (mesh::map_id m : ctx.maps_from[static_cast<std::size_t>(es)]) {
      const mesh::MapDef& mp = mesh.map(m);
      for (int k = 0; k < mp.arity; ++k)
        fn(mp.to,
           mp.targets[static_cast<std::size_t>(eg * mp.arity + k)]);
    }
    for (mesh::map_id m : ctx.maps_to[static_cast<std::size_t>(es)]) {
      const mesh::MapDef& mp = mesh.map(m);
      for (gidx_t f : ctx.reverse[static_cast<std::size_t>(m)].row(eg))
        fn(mp.from, f);
    }
  };

  std::vector<std::unordered_map<gidx_t, int>> din(
      static_cast<std::size_t>(nsets));

  // Seed: owned elements adjacent to any foreign element have din = 1.
  std::vector<std::pair<mesh::set_id, gidx_t>> frontier;
  for (mesh::set_id s = 0; s < nsets; ++s) {
    for (gidx_t g : ctx.owned[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(s)]) {
      bool boundary = false;
      for_each_neighbor(s, g, [&](mesh::set_id ns, gidx_t ng) {
        if (!boundary && part.owner(ns, ng) != r) boundary = true;
      });
      if (boundary) {
        din[static_cast<std::size_t>(s)].emplace(g, 1);
        frontier.emplace_back(s, g);
      }
    }
  }

  int level = 1;
  while (!frontier.empty()) {
    std::vector<std::pair<mesh::set_id, gidx_t>> next;
    for (const auto& [s, g] : frontier) {
      for_each_neighbor(s, g, [&](mesh::set_id ns, gidx_t ng) {
        if (part.owner(ns, ng) != r) return;
        auto& dn = din[static_cast<std::size_t>(ns)];
        if (dn.find(ng) == dn.end()) {
          dn.emplace(ng, level + 1);
          next.emplace_back(ns, ng);
        }
      });
    }
    frontier = std::move(next);
    ++level;
    if (level >= SetLayout::kDinCap) break;
  }
  return din;
}

}  // namespace

HaloPlan build_halo_plan(const mesh::MeshDef& mesh,
                         const partition::Partition& part,
                         const HaloPlanOptions& options) {
  OP2CA_REQUIRE(options.depth >= 1, "halo depth must be >= 1");
  OP2CA_REQUIRE(part.nranks >= 1, "partition has no ranks");
  OP2CA_REQUIRE(static_cast<int>(part.assignment.size()) == mesh.num_sets(),
                "partition does not cover all sets");

  const int nsets = mesh.num_sets();
  const int depth = options.depth;

  GlobalContext ctx;
  ctx.mesh = &mesh;
  ctx.part = &part;
  ctx.reverse.reserve(static_cast<std::size_t>(mesh.num_maps()));
  ctx.maps_from.assign(static_cast<std::size_t>(nsets), {});
  ctx.maps_to.assign(static_cast<std::size_t>(nsets), {});
  for (mesh::map_id m = 0; m < mesh.num_maps(); ++m) {
    ctx.reverse.push_back(mesh::reverse_map(mesh, m));
    ctx.maps_from[static_cast<std::size_t>(mesh.map(m).from)].push_back(m);
    ctx.maps_to[static_cast<std::size_t>(mesh.map(m).to)].push_back(m);
  }

  ctx.owned.assign(static_cast<std::size_t>(part.nranks),
                   std::vector<GIdxVec>(static_cast<std::size_t>(nsets)));
  for (mesh::set_id s = 0; s < nsets; ++s) {
    const gidx_t n = mesh.set(s).size;
    for (gidx_t g = 0; g < n; ++g)
      ctx.owned[static_cast<std::size_t>(part.owner(s, g))]
          [static_cast<std::size_t>(s)]
              .push_back(g);
  }

  ctx.owned_local_idx.assign(static_cast<std::size_t>(nsets), LIdxVec());
  for (mesh::set_id s = 0; s < nsets; ++s)
    ctx.owned_local_idx[static_cast<std::size_t>(s)].assign(
        static_cast<std::size_t>(mesh.set(s).size), kInvalidLocal);

  HaloPlan plan;
  plan.nranks = part.nranks;
  plan.depth = depth;
  plan.has_local_maps = options.build_local_maps;
  plan.ranks.resize(static_cast<std::size_t>(part.nranks));

  // Pass 1: per-rank classification, layouts and import lists.
  for (rank_t r = 0; r < part.nranks; ++r) {
    RankPlan& rp = plan.ranks[static_cast<std::size_t>(r)];
    rp.sets.resize(static_cast<std::size_t>(nsets));
    rp.lists.resize(static_cast<std::size_t>(nsets));

    std::vector<Promotion> promotions;
    std::vector<ClsMap> cls = classify_rank(ctx, r, depth, &promotions);
    std::vector<std::unordered_map<gidx_t, int>> din_all =
        compute_din_all(ctx, r);

    for (mesh::set_id s = 0; s < nsets; ++s) {
      SetLayout& lay = rp.sets[static_cast<std::size_t>(s)];
      NeighborLists& nl = rp.lists[static_cast<std::size_t>(s)];

      // Owned ordering: din descending, global id ascending.
      const std::unordered_map<gidx_t, int>& din =
          din_all[static_cast<std::size_t>(s)];
      const auto& mine = ctx.owned[static_cast<std::size_t>(r)]
                                  [static_cast<std::size_t>(s)];
      std::vector<std::pair<int, gidx_t>> owned_sorted;
      owned_sorted.reserve(mine.size());
      for (gidx_t g : mine) {
        const auto it = din.find(g);
        const int d = it == din.end() ? SetLayout::kDinCap : it->second;
        owned_sorted.emplace_back(d, g);
      }
      std::sort(owned_sorted.begin(), owned_sorted.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });

      lay.num_owned = static_cast<lidx_t>(owned_sorted.size());
      lay.local_to_global.reserve(owned_sorted.size());
      lay.owned_din.reserve(owned_sorted.size());
      for (const auto& [d, g] : owned_sorted) {
        ctx.owned_local_idx[static_cast<std::size_t>(s)]
                           [static_cast<std::size_t>(g)] =
            static_cast<lidx_t>(lay.local_to_global.size());
        lay.local_to_global.push_back(g);
        lay.owned_din.push_back(d);
      }

      // Import layers: exec 1..depth then nonexec 1..depth, each sorted
      // by global id; per-neighbour sublists keep that order.
      std::vector<GIdxVec> exec_by_layer(static_cast<std::size_t>(depth));
      std::vector<GIdxVec> nonexec_by_layer(static_cast<std::size_t>(depth));
      for (const auto& [g, code] : cls[static_cast<std::size_t>(s)]) {
        if (code > 0)
          exec_by_layer[static_cast<std::size_t>(code - 1)].push_back(g);
        else if (code < 0)
          nonexec_by_layer[static_cast<std::size_t>(-code - 1)].push_back(g);
      }

      // Local index of each imported element, needed to resolve the
      // promotion aliases below.
      std::unordered_map<gidx_t, lidx_t> import_g2l;

      lay.exec_end.assign(static_cast<std::size_t>(depth) + 1,
                          lay.num_owned);
      for (int k = 1; k <= depth; ++k) {
        auto& layer = exec_by_layer[static_cast<std::size_t>(k - 1)];
        std::sort(layer.begin(), layer.end());
        for (gidx_t g : layer) {
          const rank_t owner = part.owner(s, g);
          auto& lists = nl.imp_exec[owner];
          if (lists.empty())
            lists.resize(static_cast<std::size_t>(depth));
          const auto li = static_cast<lidx_t>(lay.local_to_global.size());
          lists[static_cast<std::size_t>(k - 1)].push_back(li);
          import_g2l.emplace(g, li);
          lay.local_to_global.push_back(g);
        }
        lay.exec_end[static_cast<std::size_t>(k)] =
            static_cast<lidx_t>(lay.local_to_global.size());
      }

      // Promoted elements re-enter the nonexec lists at their original
      // read layer as aliases: same local slot (in the exec segment),
      // but delivered by any exchange of that depth.
      std::vector<GIdxVec> alias_by_layer(static_cast<std::size_t>(depth));
      for (const Promotion& p : promotions)
        if (p.set == s)
          alias_by_layer[static_cast<std::size_t>(p.read_layer - 1)]
              .push_back(p.gid);

      lay.nonexec_end.assign(static_cast<std::size_t>(depth) + 1,
                             lay.exec_end[static_cast<std::size_t>(depth)]);
      for (int k = 1; k <= depth; ++k) {
        auto& layer = nonexec_by_layer[static_cast<std::size_t>(k - 1)];
        auto& aliases = alias_by_layer[static_cast<std::size_t>(k - 1)];
        std::sort(layer.begin(), layer.end());
        std::sort(aliases.begin(), aliases.end());
        auto add_to_list = [&](gidx_t g, lidx_t li) {
          const rank_t owner = part.owner(s, g);
          auto& lists = nl.imp_nonexec[owner];
          if (lists.empty())
            lists.resize(static_cast<std::size_t>(depth));
          lists[static_cast<std::size_t>(k - 1)].push_back(li);
        };
        for (gidx_t g : layer) {
          const auto li = static_cast<lidx_t>(lay.local_to_global.size());
          add_to_list(g, li);
          lay.local_to_global.push_back(g);
        }
        for (gidx_t g : aliases) {
          const auto it = import_g2l.find(g);
          OP2CA_ASSERT(it != import_g2l.end(),
                       "promoted element missing from exec imports");
          add_to_list(g, it->second);
        }
        lay.nonexec_end[static_cast<std::size_t>(k)] =
            static_cast<lidx_t>(lay.local_to_global.size());
      }

      lay.total = static_cast<lidx_t>(lay.local_to_global.size());

      for (const auto& [q, lists] : nl.imp_exec) {
        OP2CA_ASSERT(q != r, "import from self");
        rp.neighbors.insert(q);
        (void)lists;
      }
      for (const auto& [q, lists] : nl.imp_nonexec) {
        rp.neighbors.insert(q);
        (void)lists;
      }
    }
  }

  // Pass 2: export registration. Rank q's import list from owner r maps
  // one-to-one (same order) onto r's export list toward q.
  for (rank_t q = 0; q < part.nranks; ++q) {
    const RankPlan& qp = plan.ranks[static_cast<std::size_t>(q)];
    for (mesh::set_id s = 0; s < nsets; ++s) {
      const SetLayout& qlay = qp.sets[static_cast<std::size_t>(s)];
      const NeighborLists& qnl = qp.lists[static_cast<std::size_t>(s)];

      auto register_exports = [&](const std::map<rank_t,
                                                 std::vector<LIdxVec>>& imp,
                                  bool exec) {
        for (const auto& [owner, layers] : imp) {
          RankPlan& op = plan.ranks[static_cast<std::size_t>(owner)];
          NeighborLists& onl = op.lists[static_cast<std::size_t>(s)];
          auto& exp = exec ? onl.exp_exec[q] : onl.exp_nonexec[q];
          if (exp.empty()) exp.resize(static_cast<std::size_t>(depth));
          op.neighbors.insert(q);
          for (int k = 0; k < depth; ++k) {
            for (lidx_t li : layers[static_cast<std::size_t>(k)]) {
              const gidx_t g =
                  qlay.local_to_global[static_cast<std::size_t>(li)];
              const lidx_t owner_local =
                  ctx.owned_local_idx[static_cast<std::size_t>(s)]
                                     [static_cast<std::size_t>(g)];
              OP2CA_ASSERT(owner_local != kInvalidLocal,
                           "imported element has no owner-local index");
              exp[static_cast<std::size_t>(k)].push_back(owner_local);
            }
          }
        }
      };
      register_exports(qnl.imp_exec, /*exec=*/true);
      register_exports(qnl.imp_nonexec, /*exec=*/false);
    }
  }

  // Pass 3: localized maps (optional).
  if (options.build_local_maps) build_local_maps(mesh, &plan);

  return plan;
}

}  // namespace op2ca::halo
