#include "op2ca/halo/halo_plan.hpp"

#include <algorithm>

#include "op2ca/util/error.hpp"

namespace op2ca::halo {

lidx_t SetLayout::core_count(int shrink) const {
  // owned_din is sorted descending; count elements with din > shrink.
  const auto it = std::lower_bound(owned_din.begin(), owned_din.end(), shrink,
                                   [](int din, int s) { return din > s; });
  return static_cast<lidx_t>(it - owned_din.begin());
}

std::pair<lidx_t, lidx_t> SetLayout::exec_layer(int k) const {
  OP2CA_REQUIRE(k >= 1 && k < static_cast<int>(exec_end.size()),
                "exec_layer index out of range");
  return {exec_end[static_cast<std::size_t>(k - 1)],
          exec_end[static_cast<std::size_t>(k)]};
}

std::pair<lidx_t, lidx_t> SetLayout::nonexec_layer(int k) const {
  OP2CA_REQUIRE(k >= 1 && k < static_cast<int>(nonexec_end.size()),
                "nonexec_layer index out of range");
  return {nonexec_end[static_cast<std::size_t>(k - 1)],
          nonexec_end[static_cast<std::size_t>(k)]};
}

}  // namespace op2ca::halo
