#include "op2ca/halo/renumber.hpp"

#include <algorithm>
#include <unordered_map>

#include "op2ca/util/error.hpp"

namespace op2ca::halo {

void build_local_maps(const mesh::MeshDef& mesh, HaloPlan* plan) {
  OP2CA_REQUIRE(plan != nullptr, "build_local_maps: null plan");
  const int nsets = mesh.num_sets();

  for (auto& rp : plan->ranks) {
    // Global -> local lookup per set for this rank only.
    std::vector<std::unordered_map<gidx_t, lidx_t>> g2l(
        static_cast<std::size_t>(nsets));
    for (mesh::set_id s = 0; s < nsets; ++s) {
      const SetLayout& lay = rp.sets[static_cast<std::size_t>(s)];
      auto& lookup = g2l[static_cast<std::size_t>(s)];
      lookup.reserve(lay.local_to_global.size());
      for (lidx_t i = 0; i < lay.total; ++i)
        lookup.emplace(lay.local_to_global[static_cast<std::size_t>(i)], i);
    }

    rp.maps.assign(static_cast<std::size_t>(mesh.num_maps()), LocalMap{});
    for (mesh::map_id m = 0; m < mesh.num_maps(); ++m) {
      const mesh::MapDef& mp = mesh.map(m);
      const SetLayout& from_lay = rp.sets[static_cast<std::size_t>(mp.from)];
      const auto& to_lookup = g2l[static_cast<std::size_t>(mp.to)];

      LocalMap& lm = rp.maps[static_cast<std::size_t>(m)];
      lm.arity = mp.arity;
      lm.targets.assign(
          static_cast<std::size_t>(from_lay.total) *
              static_cast<std::size_t>(mp.arity),
          kInvalidLocal);
      for (lidx_t f = 0; f < from_lay.total; ++f) {
        const gidx_t gf =
            from_lay.local_to_global[static_cast<std::size_t>(f)];
        for (int k = 0; k < mp.arity; ++k) {
          const gidx_t gt =
              mp.targets[static_cast<std::size_t>(gf * mp.arity + k)];
          const auto it = to_lookup.find(gt);
          if (it != to_lookup.end())
            lm.targets[static_cast<std::size_t>(f) *
                           static_cast<std::size_t>(mp.arity) +
                       static_cast<std::size_t>(k)] = it->second;
        }
      }
    }
  }
  plan->has_local_maps = true;
}

std::vector<double> gather_local(const std::vector<double>& global_data,
                                 int dim, const SetLayout& layout) {
  std::vector<double> local(static_cast<std::size_t>(layout.total) *
                            static_cast<std::size_t>(dim));
  for (lidx_t i = 0; i < layout.total; ++i) {
    const gidx_t g = layout.local_to_global[static_cast<std::size_t>(i)];
    for (int d = 0; d < dim; ++d)
      local[static_cast<std::size_t>(i) * static_cast<std::size_t>(dim) +
            static_cast<std::size_t>(d)] =
          global_data[static_cast<std::size_t>(g) *
                          static_cast<std::size_t>(dim) +
                      static_cast<std::size_t>(d)];
  }
  return local;
}

void gather_local(const std::vector<double>& global_data,
                  const SetLayout& layout, const mesh::DatLayout& store,
                  double* out) {
  const int dim = store.dim;
  std::fill(out, out + store.alloc_doubles(), 0.0);
  for (lidx_t i = 0; i < layout.total; ++i) {
    const gidx_t g = layout.local_to_global[static_cast<std::size_t>(i)];
    const double* row = global_data.data() +
                        static_cast<std::size_t>(g) *
                            static_cast<std::size_t>(dim);
    const std::size_t base = store.elem_offset(i);
    for (int d = 0; d < dim; ++d)
      out[base + static_cast<std::size_t>(d) *
                     static_cast<std::size_t>(store.cstride)] = row[d];
  }
}

void scatter_owned(const std::vector<double>& local_data, int dim,
                   const SetLayout& layout,
                   std::vector<double>* global_data) {
  OP2CA_REQUIRE(global_data != nullptr, "scatter_owned: null output");
  for (lidx_t i = 0; i < layout.num_owned; ++i) {
    const gidx_t g = layout.local_to_global[static_cast<std::size_t>(i)];
    for (int d = 0; d < dim; ++d)
      (*global_data)[static_cast<std::size_t>(g) *
                         static_cast<std::size_t>(dim) +
                     static_cast<std::size_t>(d)] =
          local_data[static_cast<std::size_t>(i) *
                         static_cast<std::size_t>(dim) +
                     static_cast<std::size_t>(d)];
  }
}

void scatter_owned(const double* local_data, const SetLayout& layout,
                   const mesh::DatLayout& store,
                   std::vector<double>* global_data) {
  OP2CA_REQUIRE(global_data != nullptr, "scatter_owned: null output");
  const int dim = store.dim;
  for (lidx_t i = 0; i < layout.num_owned; ++i) {
    const gidx_t g = layout.local_to_global[static_cast<std::size_t>(i)];
    double* row = global_data->data() +
                  static_cast<std::size_t>(g) *
                      static_cast<std::size_t>(dim);
    const std::size_t base = store.elem_offset(i);
    for (int d = 0; d < dim; ++d)
      row[d] = local_data[base + static_cast<std::size_t>(d) *
                                     static_cast<std::size_t>(store.cstride)];
  }
}

}  // namespace op2ca::halo
