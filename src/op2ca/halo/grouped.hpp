// Grouped halo message assembly (Fig 8 of the paper): for each neighbour,
// a single buffer concatenating, per dat, the export-exec layers 1..h_d
// followed by the export-nonexec layers 1..h_d. Sender and receiver
// iterate the same (dat, class, layer) sequence over symmetric lists, so
// offsets agree without any header.
//
// The same pack/unpack primitives serve the baseline per-loop exchange
// (one dat, one layer, exec and nonexec sent as two separate messages —
// the 2 d p m^1 term of Eq (1)).
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "op2ca/halo/halo_plan.hpp"

namespace op2ca::halo {

/// One dat's participation in a grouped exchange.
struct DatSyncSpec {
  mesh::set_id set = -1;
  int dim = 0;
  int depth = 1;  ///< halo layers to sync (paper's per-dat h_l).
  /// Local data array of the dat on this rank (layout order).
  double* data = nullptr;
};

/// Appends data[idx] rows to `out`.
void pack_rows(const double* data, int dim, const LIdxVec& idx,
               std::vector<std::byte>* out);

/// Copies rows from `in` at `offset` into data[idx]; returns new offset.
std::size_t unpack_rows(double* data, int dim, const LIdxVec& idx,
                        std::span<const std::byte> in, std::size_t offset);

/// Total bytes of the grouped message to each neighbour (doubles only).
std::map<rank_t, std::int64_t> grouped_message_bytes(
    const RankPlan& rp, std::span<const DatSyncSpec> specs);

/// Builds the grouped export buffer toward neighbour `q`.
std::vector<std::byte> pack_grouped(const RankPlan& rp, rank_t q,
                                    std::span<const DatSyncSpec> specs);

/// Unpacks a received grouped buffer from neighbour `q` into the dats.
void unpack_grouped(const RankPlan& rp, rank_t q,
                    std::span<const DatSyncSpec> specs,
                    std::span<const std::byte> payload);

}  // namespace op2ca::halo
