// Grouped halo message assembly (Fig 8 of the paper): for each neighbour,
// a single buffer concatenating, per dat, the export-exec layers 1..h_d
// followed by the export-nonexec layers 1..h_d. Sender and receiver
// iterate the same (dat, class, layer) sequence over symmetric lists, so
// offsets agree without any header.
//
// The same pack/unpack primitives serve the baseline per-loop exchange
// (one dat, one layer, exec and nonexec sent as two separate messages —
// the 2 d p m^1 term of Eq (1)).
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/mesh/layout.hpp"
#include "op2ca/util/aligned.hpp"
#include "op2ca/util/thread_pool.hpp"

namespace op2ca::halo {

/// One dat's participation in a grouped exchange.
struct DatSyncSpec {
  mesh::set_id set = -1;
  int dim = 0;
  int depth = 1;  ///< halo layers to sync (paper's per-dat h_l).
  /// Local data array of the dat on this rank (layout order).
  double* data = nullptr;
  /// Storage layout of `data`. Null (the default, so existing aggregate
  /// initializers keep meaning what they meant) = classic AoS rows.
  ///
  /// Wire format: an AoS dat's message region stays element-major rows —
  /// bitwise-identical to the legacy protocol. A SoA/AoSoA dat's region
  /// is component-major (all component-0 values, then component-1, ...),
  /// so the pack/unpack become contiguous per-component streams on both
  /// sides. Sender and receiver derive each dat's layout kind from the
  /// same WorldConfig, so the region shapes always agree; per-rank
  /// padding never leaks into the message.
  const mesh::DatLayout* layout = nullptr;
};

/// Appends data[idx] rows to `out`.
void pack_rows(const double* data, int dim, const LIdxVec& idx,
               ByteBuf* out);

/// Copies data[idx] rows into `out` (idx.size() * dim doubles). The raw,
/// allocation-free primitive under pack_rows and the GroupedPlan pack.
void gather_rows(const double* data, int dim, const LIdxVec& idx,
                 std::byte* out);

/// Layout-aware gather of one message region (idx.size() * dim doubles):
/// element-major rows when `lay` is null / AoS, component-major streams
/// otherwise. One region = one per-loop message or one dat's slice of a
/// grouped message.
void gather_region(const double* data, const mesh::DatLayout* lay, int dim,
                   const LIdxVec& idx, std::byte* out);

/// Copies rows from `in` at `offset` into data[idx]; returns new offset.
std::size_t unpack_rows(double* data, int dim, const LIdxVec& idx,
                        std::span<const std::byte> in, std::size_t offset);

/// Layout-aware inverse of gather_region; returns the advanced offset.
std::size_t unpack_region(double* data, const mesh::DatLayout* lay, int dim,
                          const LIdxVec& idx, std::span<const std::byte> in,
                          std::size_t offset);

/// Total bytes of the grouped message to each neighbour (doubles only).
std::map<rank_t, std::int64_t> grouped_message_bytes(
    const RankPlan& rp, std::span<const DatSyncSpec> specs);

/// Builds the grouped export buffer toward neighbour `q`. Reference
/// implementation: walks the (dat, class, layer) segment sequence through
/// the per-neighbour list maps and allocates a fresh buffer. The
/// executors use a GroupedPlan instead; this stays as the ground truth
/// the plan is tested against and as the one-shot API for benches.
ByteBuf pack_grouped(const RankPlan& rp, rank_t q,
                                    std::span<const DatSyncSpec> specs);

/// Unpacks a received grouped buffer from neighbour `q` into the dats.
void unpack_grouped(const RankPlan& rp, rank_t q,
                    std::span<const DatSyncSpec> specs,
                    std::span<const std::byte> payload);

/// Persistent grouped-exchange plan: the (dat, class, layer) segment walk
/// of a grouped message flattened, per neighbour, into one concatenated
/// gather (export) and scatter (import) row-index list per dat, plus the
/// total byte counts. Built once at inspection time; steady-state epochs
/// then pack/unpack with zero map lookups and zero allocations.
///
/// The plan pins the (specs, neighbour lists) geometry it was built from:
/// rebuild whenever the participating dat set, sync depths or dims
/// change. DatSyncSpec::data pointers are NOT pinned — pack/unpack take
/// the current specs so callers can rebind data arrays cheaply per epoch.
struct GroupedPlan {
  struct Side {
    rank_t q = -1;
    /// gather[s] / scatter[s]: specs[s]'s export / import rows toward /
    /// from q — exec layers 1..depth then nonexec layers 1..depth,
    /// concatenated in canonical message order.
    std::vector<LIdxVec> gather;
    std::vector<LIdxVec> scatter;
    std::size_t send_bytes = 0;
    std::size_t recv_bytes = 0;
  };
  /// One side per neighbour with traffic in either direction.
  std::vector<Side> sides;
};

/// Flattens the segment walk for every neighbour of `rp`.
GroupedPlan build_grouped_plan(const RankPlan& rp,
                               std::span<const DatSyncSpec> specs);

/// Packs the grouped message toward side.q into `out`, which must hold
/// side.send_bytes. Allocation-free by construction. With a pool, each
/// dat's gather list splits into one contiguous chunk per thread —
/// chunks write disjoint `out` segments, so the buffer is bitwise
/// identical at every width (pass nullptr for the serial pack).
void pack_grouped(const GroupedPlan::Side& side,
                  std::span<const DatSyncSpec> specs, std::byte* out,
                  util::ThreadPool* pool = nullptr);

/// Unpacks a received grouped payload (side.recv_bytes long) from side.q.
/// With a pool, scatter lists chunk the same way; every local row appears
/// at most once across a side's scatter lists, so chunks write disjoint
/// dat rows.
void unpack_grouped(const GroupedPlan::Side& side,
                    std::span<const DatSyncSpec> specs,
                    std::span<const std::byte> payload,
                    util::ThreadPool* pool = nullptr);

}  // namespace op2ca::halo
