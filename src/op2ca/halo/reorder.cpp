#include "op2ca/halo/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "op2ca/mesh/adjacency.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::halo {
namespace {

/// Buckets larger than this connect as a path instead of a clique: the
/// clique keeps RCM's profile tight for ordinary mesh incidence (a node
/// shared by a handful of edges/cells) without letting a hub target
/// (e.g. a boundary-condition element referenced by thousands of rows)
/// blow the edge list up quadratically.
constexpr lidx_t kCliqueCap = 16;

void add_group_edges(const LIdxVec& group,
                     std::vector<std::pair<lidx_t, lidx_t>>* edges) {
  const lidx_t n = static_cast<lidx_t>(group.size());
  if (n < 2) return;
  if (n <= kCliqueCap) {
    for (lidx_t a = 0; a < n; ++a)
      for (lidx_t b = a + 1; b < n; ++b) {
        edges->emplace_back(group[static_cast<std::size_t>(a)],
                            group[static_cast<std::size_t>(b)]);
        edges->emplace_back(group[static_cast<std::size_t>(b)],
                            group[static_cast<std::size_t>(a)]);
      }
  } else {
    for (lidx_t a = 0; a + 1 < n; ++a) {
      edges->emplace_back(group[static_cast<std::size_t>(a)],
                          group[static_cast<std::size_t>(a) + 1]);
      edges->emplace_back(group[static_cast<std::size_t>(a) + 1],
                          group[static_cast<std::size_t>(a)]);
    }
  }
}

/// Loop-conflict adjacency of set `s` in rank-local numbering: two
/// elements are adjacent when a map entry joins them — either as
/// same-row targets of a map onto `s`, or as rows of a map from `s`
/// sharing a target. This is exactly the structure indirect kernels
/// gather through, so minimising its bandwidth is minimising the
/// gather working set.
mesh::LocalCsr conflict_graph(const mesh::MeshDef& mesh, const RankPlan& rp,
                              mesh::set_id s) {
  const lidx_t n = rp.sets[static_cast<std::size_t>(s)].total;
  std::vector<std::pair<lidx_t, lidx_t>> edges;
  LIdxVec group;
  for (mesh::map_id m = 0; m < mesh.num_maps(); ++m) {
    const mesh::MapDef& md = mesh.map(m);
    const LocalMap& lm = rp.maps[static_cast<std::size_t>(m)];
    const std::size_t ar = static_cast<std::size_t>(lm.arity);
    if (ar == 0) continue;
    const std::size_t rows = lm.targets.size() / ar;
    if (md.to == s) {
      for (std::size_t f = 0; f < rows; ++f) {
        group.clear();
        for (std::size_t k = 0; k < ar; ++k) {
          const lidx_t t = lm.targets[f * ar + k];
          if (t != kInvalidLocal) group.push_back(t);
        }
        add_group_edges(group, &edges);
      }
    }
    if (md.from == s) {
      // Reverse incidence: rows of this map bucketed by target.
      const lidx_t nt = rp.sets[static_cast<std::size_t>(md.to)].total;
      std::vector<std::size_t> count(static_cast<std::size_t>(nt) + 1, 0);
      for (std::size_t i = 0; i < lm.targets.size(); ++i) {
        const lidx_t t = lm.targets[i];
        if (t != kInvalidLocal) ++count[static_cast<std::size_t>(t) + 1];
      }
      for (std::size_t t = 1; t < count.size(); ++t) count[t] += count[t - 1];
      LIdxVec sources(count.back());
      std::vector<std::size_t> at(count.begin(), count.end() - 1);
      for (std::size_t f = 0; f < rows; ++f)
        for (std::size_t k = 0; k < ar; ++k) {
          const lidx_t t = lm.targets[f * ar + k];
          if (t == kInvalidLocal) continue;
          sources[at[static_cast<std::size_t>(t)]++] =
              static_cast<lidx_t>(f);
        }
      for (lidx_t t = 0; t < nt; ++t) {
        group.assign(sources.begin() +
                         static_cast<std::ptrdiff_t>(
                             count[static_cast<std::size_t>(t)]),
                     sources.begin() +
                         static_cast<std::ptrdiff_t>(
                             count[static_cast<std::size_t>(t) + 1]));
        add_group_edges(group, &edges);
      }
    }
  }
  return mesh::csr_from_edges(n, std::move(edges));
}

/// Gathers a set's (derived, global) coordinates into local order.
std::vector<double> local_coords(const std::vector<double>& global_coords,
                                 int dim, const SetLayout& lay) {
  std::vector<double> out(static_cast<std::size_t>(lay.total) *
                          static_cast<std::size_t>(dim));
  for (lidx_t i = 0; i < lay.total; ++i) {
    const std::size_t g =
        static_cast<std::size_t>(lay.local_to_global[static_cast<std::size_t>(i)]);
    for (int c = 0; c < dim; ++c)
      out[static_cast<std::size_t>(i) * static_cast<std::size_t>(dim) +
          static_cast<std::size_t>(c)] =
          global_coords[g * static_cast<std::size_t>(dim) +
                        static_cast<std::size_t>(c)];
  }
  return out;
}

/// Rewrites the maps touching permuted set `s` on one rank: rows of maps
/// *from* s move to their new positions, targets of maps *onto* s are
/// renamed through the permutation (both at once for self-maps).
void permute_rank_maps(const mesh::MeshDef& mesh, RankPlan* rp,
                       mesh::set_id s, const mesh::Permutation& p) {
  for (mesh::map_id m = 0; m < mesh.num_maps(); ++m) {
    const mesh::MapDef& md = mesh.map(m);
    const bool from_s = md.from == s;
    const bool to_s = md.to == s;
    if (!from_s && !to_s) continue;
    LocalMap& lm = rp->maps[static_cast<std::size_t>(m)];
    const std::size_t ar = static_cast<std::size_t>(lm.arity);
    const std::size_t rows = lm.targets.size() / ar;
    LIdxVec out(lm.targets.size());
    for (std::size_t f = 0; f < rows; ++f) {
      const std::size_t nf =
          from_s ? static_cast<std::size_t>(p.new_of_old[f]) : f;
      for (std::size_t k = 0; k < ar; ++k) {
        lidx_t t = lm.targets[f * ar + k];
        if (to_s && t != kInvalidLocal)
          t = p.new_of_old[static_cast<std::size_t>(t)];
        out[nf * ar + k] = t;
      }
    }
    lm.targets = std::move(out);
  }
}

void rename_lists(std::map<rank_t, std::vector<LIdxVec>>* tab,
                  const mesh::Permutation& p) {
  for (auto& [q, layers] : *tab)
    for (LIdxVec& idx : layers)
      for (lidx_t& i : idx)
        i = p.new_of_old[static_cast<std::size_t>(i)];
}

/// Jointly re-sorts one (export, mirroring import) list pair into
/// ascending exporter-index order. The positional pairing is the
/// transport contract, so both sides permute together.
void sort_list_pair(LIdxVec* exp, LIdxVec* imp) {
  OP2CA_ASSERT(exp->size() == imp->size(),
               "reorder: export/import list size mismatch");
  const std::size_t n = exp->size();
  if (n < 2) return;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return (*exp)[a] < (*exp)[b];
  });
  LIdxVec new_exp(n), new_imp(n);
  for (std::size_t i = 0; i < n; ++i) {
    new_exp[i] = (*exp)[order[i]];
    new_imp[i] = (*imp)[order[i]];
  }
  *exp = std::move(new_exp);
  *imp = std::move(new_imp);
}

}  // namespace

mesh::BlockVec reorder_blocks(const SetLayout& lay, int depth) {
  mesh::BlockVec blocks;
  const int clamp = depth + 1;
  lidx_t b = 0;
  while (b < lay.num_owned) {
    const int din = std::min(lay.owned_din[static_cast<std::size_t>(b)], clamp);
    lidx_t e = b;
    while (e < lay.num_owned &&
           std::min(lay.owned_din[static_cast<std::size_t>(e)], clamp) == din)
      ++e;
    blocks.emplace_back(b, e);
    b = e;
  }
  for (int k = 1; k <= depth; ++k) blocks.push_back(lay.exec_layer(k));
  for (int k = 1; k <= depth; ++k) blocks.push_back(lay.nonexec_layer(k));
  return blocks;
}

ReorderResult apply_reorder(const mesh::MeshDef& mesh,
                            const mesh::ReorderConfig& cfg, HaloPlan* plan) {
  ReorderResult res;
  res.perms.resize(static_cast<std::size_t>(plan->nranks));
  for (auto& per_set : res.perms)
    per_set.resize(static_cast<std::size_t>(mesh.num_sets()));
  res.set_kind.assign(static_cast<std::size_t>(mesh.num_sets()),
                      mesh::ReorderKind::None);
  if (!cfg.enabled()) return res;
  OP2CA_REQUIRE(plan->has_local_maps,
                "apply_reorder needs a plan with local maps");

  // Resolve the per-set policy once; Auto prefers the geometric curve
  // and falls back to RCM for sets without a path to the coords dat.
  std::vector<std::vector<double>> global_coords(
      static_cast<std::size_t>(mesh.num_sets()));
  const int dim = mesh.has_coords() ? mesh.dat(mesh.coords_dat()).dim : 0;
  for (mesh::set_id s = 0; s < mesh.num_sets(); ++s) {
    mesh::ReorderKind k = cfg.for_set(mesh.set(s).name);
    if (k == mesh::ReorderKind::Auto || k == mesh::ReorderKind::SFC) {
      try {
        global_coords[static_cast<std::size_t>(s)] =
            mesh::derive_coords(mesh, s);
        k = mesh::ReorderKind::SFC;
      } catch (const Error&) {
        OP2CA_REQUIRE(k == mesh::ReorderKind::Auto,
                      "reorder: SFC requested for set '" + mesh.set(s).name +
                          "' but no geometric path exists");
        k = mesh::ReorderKind::RCM;
      }
    }
    res.set_kind[static_cast<std::size_t>(s)] = k;
  }

  for (rank_t r = 0; r < plan->nranks; ++r) {
    RankPlan& rp = plan->ranks[static_cast<std::size_t>(r)];
    for (mesh::set_id s = 0; s < mesh.num_sets(); ++s) {
      const mesh::ReorderKind kind =
          res.set_kind[static_cast<std::size_t>(s)];
      if (kind == mesh::ReorderKind::None) continue;
      SetLayout& lay = rp.sets[static_cast<std::size_t>(s)];
      if (lay.total == 0) continue;

      const mesh::BlockVec blocks = reorder_blocks(lay, plan->depth);
      mesh::Permutation p =
          kind == mesh::ReorderKind::RCM
              ? mesh::rcm_order(conflict_graph(mesh, rp, s), blocks)
              : mesh::sfc_order(
                    local_coords(global_coords[static_cast<std::size_t>(s)],
                                 dim, lay),
                    dim, lay.total, blocks);

      // Clamp interior distances even for identity permutations so the
      // layout invariant is uniform across ranks.
      const int clamp = plan->depth + 1;
      for (int& d : lay.owned_din) d = std::min(d, clamp);

      if (!p.is_identity()) {
        lay.local_to_global = mesh::permute_rows(p, 1, lay.local_to_global);
        std::vector<int> din(lay.owned_din.size());
        for (std::size_t i = 0; i < din.size(); ++i)
          din[static_cast<std::size_t>(p.new_of_old[i])] = lay.owned_din[i];
        lay.owned_din = std::move(din);

        permute_rank_maps(mesh, &rp, s, p);
        NeighborLists& nl = rp.lists[static_cast<std::size_t>(s)];
        rename_lists(&nl.exp_exec, p);
        rename_lists(&nl.exp_nonexec, p);
        rename_lists(&nl.imp_exec, p);
        rename_lists(&nl.imp_nonexec, p);
        ++res.sets_reordered;
      }
      res.perms[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)] =
          std::move(p);
    }
  }

  // Restore ascending export order (jointly with the mirroring import
  // lists — positional pairing is the transport contract) so steady-state
  // pack gathers stream through memory monotonically.
  for (rank_t r = 0; r < plan->nranks; ++r) {
    RankPlan& rp = plan->ranks[static_cast<std::size_t>(r)];
    for (mesh::set_id s = 0; s < mesh.num_sets(); ++s) {
      if (res.set_kind[static_cast<std::size_t>(s)] ==
          mesh::ReorderKind::None)
        continue;
      NeighborLists& nl = rp.lists[static_cast<std::size_t>(s)];
      auto sort_table = [&](std::map<rank_t, std::vector<LIdxVec>>* exp_tab,
                            bool exec) {
        for (auto& [q, layers] : *exp_tab) {
          NeighborLists& peer_nl = plan->ranks[static_cast<std::size_t>(q)]
                                       .lists[static_cast<std::size_t>(s)];
          auto& imp_tab = exec ? peer_nl.imp_exec : peer_nl.imp_nonexec;
          const auto it = imp_tab.find(r);
          OP2CA_ASSERT(it != imp_tab.end() &&
                           it->second.size() == layers.size(),
                       "reorder: export list without mirroring import");
          for (std::size_t k = 0; k < layers.size(); ++k)
            sort_list_pair(&layers[k], &it->second[k]);
        }
      };
      sort_table(&nl.exp_exec, true);
      sort_table(&nl.exp_nonexec, false);
    }
  }
  return res;
}

}  // namespace op2ca::halo
