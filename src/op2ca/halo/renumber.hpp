// Localization of global structures to each rank's renumbered element
// space: map target renumbering (Fig 6b) and dat gather/scatter between
// global and local storage.
#pragma once

#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/mesh/layout.hpp"

namespace op2ca::halo {

/// Fills plan->ranks[*].maps: every mesh map localized to each rank's
/// numbering. Targets outside a rank's region become kInvalidLocal (these
/// rows belong to never-executed fringe elements).
void build_local_maps(const mesh::MeshDef& mesh, HaloPlan* plan);

/// Gathers a global dat (row-major, `dim` values/element) into one rank's
/// local layout order (owned, exec layers, nonexec layers).
std::vector<double> gather_local(const std::vector<double>& global_data,
                                 int dim, const SetLayout& layout);

/// Layout-aware gather: the rank<->global transpose boundary of the SIMD
/// data plane. Writes straight into a `store`-arranged local array (`out`
/// must hold store.alloc_doubles(); padding slots are zeroed). With an
/// AoS descriptor this produces exactly gather_local's output.
void gather_local(const std::vector<double>& global_data,
                  const SetLayout& layout, const mesh::DatLayout& store,
                  double* out);

/// Scatters one rank's OWNED values back into the global array.
void scatter_owned(const std::vector<double>& local_data, int dim,
                   const SetLayout& layout, std::vector<double>* global_data);

/// Layout-aware scatter (inverse boundary transpose of the gather above).
void scatter_owned(const double* local_data, const SetLayout& layout,
                   const mesh::DatLayout& store,
                   std::vector<double>* global_data);

}  // namespace op2ca::halo
