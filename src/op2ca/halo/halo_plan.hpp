// Multi-layered halo plan (Figs 4-7 of the paper).
//
// For every rank and every set, local elements are arranged as
//
//   [ owned (sorted by decreasing inward distance) |
//     import-exec layer 1 .. D | import-nonexec layer 1 .. D ]
//
// * "Inward distance" din(x) of an owned element is its BFS distance from
//   the partition boundary over the symmetric element-adjacency graph
//   (element ~ map target, both directions). Owned elements with din > s
//   form a prefix, so the per-loop shrinking cores of the CA executor
//   (and the plain core/boundary split of Alg 1, s = 1) are index ranges.
// * Import-exec layer k of set S holds foreign elements of S whose
//   forward map targets reach the region built up to layer k-1 — these
//   are redundantly executable iterations (paper's ieh, per level).
// * Import-nonexec layer k holds the read-only fringe discovered at layer
//   k: map targets of layer-k exec elements outside the region (inh).
//
// Export lists mirror the import lists of each neighbour: the elements of
// rank q's import-exec layer k owned by rank r appear, in identical order
// (sorted by global id), in r's export-exec list toward q.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "op2ca/mesh/mesh_def.hpp"
#include "op2ca/partition/partition.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::halo {

/// Layout of one set's local elements on one rank.
struct SetLayout {
  lidx_t num_owned = 0;
  /// exec_end[k] = end of import-exec layer k, k = 0..depth;
  /// exec_end[0] == num_owned.
  LIdxVec exec_end;
  /// nonexec_end[k] = end of import-nonexec layer k, k = 0..depth;
  /// nonexec_end[0] == exec_end[depth].
  LIdxVec nonexec_end;
  lidx_t total = 0;
  /// Global id of every local element, in local order.
  GIdxVec local_to_global;
  /// Inward distance of owned element i (local order is din-descending);
  /// boundary elements have din == 1. Capped at kDinCap.
  std::vector<int> owned_din;

  static constexpr int kDinCap = 1 << 20;

  /// Number of owned elements with din > shrink (a prefix).
  lidx_t core_count(int shrink) const;
  /// [begin, end) local range of import-exec layer k (1-based).
  std::pair<lidx_t, lidx_t> exec_layer(int k) const;
  std::pair<lidx_t, lidx_t> nonexec_layer(int k) const;
};

/// Per-(neighbour, layer) element lists for one set on one rank.
/// Layer index is 1-based; lists_[k-1] is layer k. Local indices.
struct NeighborLists {
  /// exp_exec[q][k-1]: my owned elements in q's import-exec layer k.
  std::map<rank_t, std::vector<LIdxVec>> exp_exec;
  std::map<rank_t, std::vector<LIdxVec>> exp_nonexec;
  /// imp_exec[q][k-1]: my import-exec layer-k elements owned by q.
  std::map<rank_t, std::vector<LIdxVec>> imp_exec;
  std::map<rank_t, std::vector<LIdxVec>> imp_nonexec;
};

/// A mesh map localized to one rank: row-major local target indices for
/// every local from-element; kInvalidLocal marks targets outside the
/// rank's region (only reachable from never-executed elements).
struct LocalMap {
  int arity = 0;
  LIdxVec targets;  ///< size = from-set layout total * arity.
};

/// Everything one rank needs: layouts, neighbour lists and local maps.
struct RankPlan {
  std::vector<SetLayout> sets;        ///< per set id.
  std::vector<NeighborLists> lists;   ///< per set id.
  std::vector<LocalMap> maps;         ///< per map id (empty in sizes-only).
  std::set<rank_t> neighbors;         ///< union over sets/layers.
};

struct HaloPlanOptions {
  int depth = 2;                 ///< max halo layers (paper's r).
  bool build_local_maps = true;  ///< false = sizes-only (model benches).
};

struct HaloPlan {
  int nranks = 0;
  int depth = 0;
  bool has_local_maps = false;
  std::vector<RankPlan> ranks;

  const SetLayout& layout(rank_t r, mesh::set_id s) const {
    return ranks[static_cast<std::size_t>(r)]
        .sets[static_cast<std::size_t>(s)];
  }
};

/// Builds the full multi-layer halo plan for all ranks.
HaloPlan build_halo_plan(const mesh::MeshDef& mesh,
                         const partition::Partition& part,
                         const HaloPlanOptions& options);

}  // namespace op2ca::halo
