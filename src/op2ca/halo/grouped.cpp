#include "op2ca/halo/grouped.hpp"

#include <cstring>

#include "op2ca/util/error.hpp"

namespace op2ca::halo {
namespace {

/// Looks up the per-layer list vector for (set, neighbour) or nullptr.
const std::vector<LIdxVec>* find_lists(
    const std::map<rank_t, std::vector<LIdxVec>>& table, rank_t q) {
  const auto it = table.find(q);
  return it == table.end() ? nullptr : &it->second;
}

/// Iterates the (dat, class, layer) sequence of a grouped message in the
/// canonical order shared by sender and receiver.
template <typename Fn>
void for_each_segment(const RankPlan& rp, rank_t q,
                      std::span<const DatSyncSpec> specs, bool exports,
                      Fn&& fn) {
  for (const DatSyncSpec& spec : specs) {
    const NeighborLists& nl =
        rp.lists[static_cast<std::size_t>(spec.set)];
    const std::vector<LIdxVec>* exec =
        find_lists(exports ? nl.exp_exec : nl.imp_exec, q);
    const std::vector<LIdxVec>* nonexec =
        find_lists(exports ? nl.exp_nonexec : nl.imp_nonexec, q);
    for (int k = 1; k <= spec.depth; ++k) {
      if (exec != nullptr &&
          k <= static_cast<int>(exec->size()))
        fn(spec, (*exec)[static_cast<std::size_t>(k - 1)]);
    }
    for (int k = 1; k <= spec.depth; ++k) {
      if (nonexec != nullptr && k <= static_cast<int>(nonexec->size()))
        fn(spec, (*nonexec)[static_cast<std::size_t>(k - 1)]);
    }
  }
}

/// gather_rows over a raw [idx, idx + n) subrange.
void gather_range(const double* data, int dim, const lidx_t* idx,
                  std::size_t n, std::byte* out) {
  const std::size_t row_bytes = static_cast<std::size_t>(dim) * sizeof(double);
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(out, data + static_cast<std::size_t>(idx[i]) *
                                static_cast<std::size_t>(dim),
                row_bytes);
    out += row_bytes;
  }
}

/// Scatter counterpart of gather_range.
void scatter_range(double* data, int dim, const lidx_t* idx, std::size_t n,
                   const std::byte* src) {
  const std::size_t row_bytes = static_cast<std::size_t>(dim) * sizeof(double);
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(data + static_cast<std::size_t>(idx[i]) *
                           static_cast<std::size_t>(dim),
                src, row_bytes);
    src += row_bytes;
  }
}

/// True when this spec's message region uses the legacy element-major
/// wire shape (null layout or AoS storage).
bool region_is_rows(const DatSyncSpec& spec) {
  return spec.layout == nullptr || spec.layout->is_aos();
}

/// Component-major gather of list positions [b, e) out of a region of
/// `n` total rows: component c of list slot j lands at region double
/// c * n + j. Under SoA the inner j-loop reads one contiguous component
/// plane and writes a unit-stride run — a pure streaming copy whenever
/// the export rows are consecutive (which the locality layer arranges).
void gather_cm(const double* data, const mesh::DatLayout& lay,
               const lidx_t* idx, std::size_t b, std::size_t e,
               std::size_t n, std::byte* region) {
  double* out = reinterpret_cast<double*>(region);
  for (int c = 0; c < lay.dim; ++c) {
    double* dst = out + static_cast<std::size_t>(c) * n;
    const std::size_t coff = static_cast<std::size_t>(c) *
                             static_cast<std::size_t>(lay.cstride);
    for (std::size_t j = b; j < e; ++j)
      dst[j] = data[lay.elem_offset(idx[j]) + coff];
  }
}

/// Scatter counterpart of gather_cm.
void scatter_cm(double* data, const mesh::DatLayout& lay, const lidx_t* idx,
                std::size_t b, std::size_t e, std::size_t n,
                const std::byte* region) {
  const double* in = reinterpret_cast<const double*>(region);
  for (int c = 0; c < lay.dim; ++c) {
    const double* src = in + static_cast<std::size_t>(c) * n;
    const std::size_t coff = static_cast<std::size_t>(c) *
                             static_cast<std::size_t>(lay.cstride);
    for (std::size_t j = b; j < e; ++j)
      data[lay.elem_offset(idx[j]) + coff] = src[j];
  }
}

}  // namespace

void gather_rows(const double* data, int dim, const LIdxVec& idx,
                 std::byte* out) {
  const std::size_t row_bytes = static_cast<std::size_t>(dim) * sizeof(double);
  for (lidx_t i : idx) {
    std::memcpy(out, data + static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(dim),
                row_bytes);
    out += row_bytes;
  }
}

void pack_rows(const double* data, int dim, const LIdxVec& idx,
               ByteBuf* out) {
  const std::size_t row_bytes = static_cast<std::size_t>(dim) * sizeof(double);
  const std::size_t base = out->size();
  out->resize(base + idx.size() * row_bytes);
  gather_rows(data, dim, idx, out->data() + base);
}

std::size_t unpack_rows(double* data, int dim, const LIdxVec& idx,
                        std::span<const std::byte> in, std::size_t offset) {
  const std::size_t row_bytes = static_cast<std::size_t>(dim) * sizeof(double);
  OP2CA_REQUIRE(offset + idx.size() * row_bytes <= in.size(),
                "unpack_rows: payload too short");
  const std::byte* src = in.data() + offset;
  for (lidx_t i : idx) {
    std::memcpy(data + static_cast<std::size_t>(i) *
                           static_cast<std::size_t>(dim),
                src, row_bytes);
    src += row_bytes;
  }
  return offset + idx.size() * row_bytes;
}

void gather_region(const double* data, const mesh::DatLayout* lay, int dim,
                   const LIdxVec& idx, std::byte* out) {
  if (lay == nullptr || lay->is_aos()) {
    gather_rows(data, dim, idx, out);
    return;
  }
  gather_cm(data, *lay, idx.data(), 0, idx.size(), idx.size(), out);
}

std::size_t unpack_region(double* data, const mesh::DatLayout* lay, int dim,
                          const LIdxVec& idx, std::span<const std::byte> in,
                          std::size_t offset) {
  if (lay == nullptr || lay->is_aos())
    return unpack_rows(data, dim, idx, in, offset);
  const std::size_t bytes =
      idx.size() * static_cast<std::size_t>(dim) * sizeof(double);
  OP2CA_REQUIRE(offset + bytes <= in.size(),
                "unpack_region: payload too short");
  scatter_cm(data, *lay, idx.data(), 0, idx.size(), idx.size(),
             in.data() + offset);
  return offset + bytes;
}

std::map<rank_t, std::int64_t> grouped_message_bytes(
    const RankPlan& rp, std::span<const DatSyncSpec> specs) {
  std::map<rank_t, std::int64_t> bytes;
  for (rank_t q : rp.neighbors) {
    std::int64_t total = 0;
    for_each_segment(rp, q, specs, /*exports=*/true,
                     [&](const DatSyncSpec& spec, const LIdxVec& idx) {
                       total += static_cast<std::int64_t>(idx.size()) *
                                spec.dim *
                                static_cast<std::int64_t>(sizeof(double));
                     });
    if (total > 0) bytes[q] = total;
  }
  return bytes;
}

ByteBuf pack_grouped(const RankPlan& rp, rank_t q,
                                    std::span<const DatSyncSpec> specs) {
  // A dat's segments are consecutive in the canonical walk, so gathering
  // the concatenated list per spec produces the same region placement as
  // the per-segment walk — and for non-AoS dats it is the concatenated
  // region the component-major wire shape is defined over (matching
  // GroupedPlan, whose gather lists are flattened the same way).
  ByteBuf out;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    LIdxVec rows;
    for_each_segment(rp, q, specs.subspan(s, 1), /*exports=*/true,
                     [&](const DatSyncSpec&, const LIdxVec& idx) {
                       rows.insert(rows.end(), idx.begin(), idx.end());
                     });
    if (rows.empty()) continue;
    const std::size_t base = out.size();
    out.resize(base + rows.size() *
                          static_cast<std::size_t>(specs[s].dim) *
                          sizeof(double));
    gather_region(specs[s].data, specs[s].layout, specs[s].dim, rows,
                  out.data() + base);
  }
  return out;
}

void unpack_grouped(const RankPlan& rp, rank_t q,
                    std::span<const DatSyncSpec> specs,
                    std::span<const std::byte> payload) {
  std::size_t offset = 0;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    LIdxVec rows;
    for_each_segment(rp, q, specs.subspan(s, 1), /*exports=*/false,
                     [&](const DatSyncSpec&, const LIdxVec& idx) {
                       rows.insert(rows.end(), idx.begin(), idx.end());
                     });
    if (rows.empty()) continue;
    offset = unpack_region(specs[s].data, specs[s].layout, specs[s].dim,
                           rows, payload, offset);
  }
  OP2CA_REQUIRE(offset == payload.size(),
                "unpack_grouped: payload size mismatch");
}

GroupedPlan build_grouped_plan(const RankPlan& rp,
                               std::span<const DatSyncSpec> specs) {
  GroupedPlan plan;
  for (rank_t q : rp.neighbors) {
    GroupedPlan::Side side;
    side.q = q;
    side.gather.resize(specs.size());
    side.scatter.resize(specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const std::size_t row =
          static_cast<std::size_t>(specs[s].dim) * sizeof(double);
      for_each_segment(rp, q, specs.subspan(s, 1), /*exports=*/true,
                       [&](const DatSyncSpec&, const LIdxVec& idx) {
                         side.gather[s].insert(side.gather[s].end(),
                                               idx.begin(), idx.end());
                       });
      for_each_segment(rp, q, specs.subspan(s, 1), /*exports=*/false,
                       [&](const DatSyncSpec&, const LIdxVec& idx) {
                         side.scatter[s].insert(side.scatter[s].end(),
                                                idx.begin(), idx.end());
                       });
      side.send_bytes += side.gather[s].size() * row;
      side.recv_bytes += side.scatter[s].size() * row;
    }
    if (side.send_bytes > 0 || side.recv_bytes > 0)
      plan.sides.push_back(std::move(side));
  }
  return plan;
}

void pack_grouped(const GroupedPlan::Side& side,
                  std::span<const DatSyncSpec> specs, std::byte* out,
                  util::ThreadPool* pool) {
  if (pool == nullptr || pool->threads() <= 1) {
    for (std::size_t s = 0; s < specs.size(); ++s) {
      gather_region(specs[s].data, specs[s].layout, specs[s].dim,
                    side.gather[s], out);
      out += side.gather[s].size() *
             static_cast<std::size_t>(specs[s].dim) * sizeof(double);
    }
    return;
  }
  // Thread t gathers chunk t of every spec's list into its slots: chunks
  // tile the output exactly (row-major byte ranges for AoS regions,
  // column slices of every component stream for component-major ones),
  // so the buffer matches the serial pack byte-for-byte at any width.
  std::vector<std::size_t> base(specs.size());
  std::size_t off = 0;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    base[s] = off;
    off += side.gather[s].size() *
           static_cast<std::size_t>(specs[s].dim) * sizeof(double);
  }
  const std::size_t nt = static_cast<std::size_t>(pool->threads());
  pool->run([&](int t) {
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const std::size_t row =
          static_cast<std::size_t>(specs[s].dim) * sizeof(double);
      const std::size_t n = side.gather[s].size();
      const std::size_t b = n * static_cast<std::size_t>(t) / nt;
      const std::size_t e = n * (static_cast<std::size_t>(t) + 1) / nt;
      if (b == e) continue;
      if (region_is_rows(specs[s]))
        gather_range(specs[s].data, specs[s].dim, side.gather[s].data() + b,
                     e - b, out + base[s] + b * row);
      else
        gather_cm(specs[s].data, *specs[s].layout, side.gather[s].data(),
                  b, e, n, out + base[s]);
    }
  });
}

void unpack_grouped(const GroupedPlan::Side& side,
                    std::span<const DatSyncSpec> specs,
                    std::span<const std::byte> payload,
                    util::ThreadPool* pool) {
  OP2CA_REQUIRE(payload.size() == side.recv_bytes,
                "unpack_grouped: payload does not match the plan");
  if (pool == nullptr || pool->threads() <= 1) {
    const std::byte* src = payload.data();
    for (std::size_t s = 0; s < specs.size(); ++s) {
      if (region_is_rows(specs[s]))
        scatter_range(specs[s].data, specs[s].dim, side.scatter[s].data(),
                      side.scatter[s].size(), src);
      else
        scatter_cm(specs[s].data, *specs[s].layout,
                   side.scatter[s].data(), 0, side.scatter[s].size(),
                   side.scatter[s].size(), src);
      src += side.scatter[s].size() *
             static_cast<std::size_t>(specs[s].dim) * sizeof(double);
    }
    return;
  }
  // Import rows within a side are distinct, so chunks touch disjoint
  // dat rows and the scatter is race-free at any width.
  std::vector<std::size_t> base(specs.size());
  std::size_t off = 0;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    base[s] = off;
    off += side.scatter[s].size() *
           static_cast<std::size_t>(specs[s].dim) * sizeof(double);
  }
  const std::size_t nt = static_cast<std::size_t>(pool->threads());
  pool->run([&](int t) {
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const std::size_t row =
          static_cast<std::size_t>(specs[s].dim) * sizeof(double);
      const std::size_t n = side.scatter[s].size();
      const std::size_t b = n * static_cast<std::size_t>(t) / nt;
      const std::size_t e = n * (static_cast<std::size_t>(t) + 1) / nt;
      if (b == e) continue;
      if (region_is_rows(specs[s]))
        scatter_range(specs[s].data, specs[s].dim,
                      side.scatter[s].data() + b, e - b,
                      payload.data() + base[s] + b * row);
      else
        scatter_cm(specs[s].data, *specs[s].layout,
                   side.scatter[s].data(), b, e, n,
                   payload.data() + base[s]);
    }
  });
}

}  // namespace op2ca::halo
