#include "op2ca/halo/grouped.hpp"

#include <cstring>

#include "op2ca/util/error.hpp"

namespace op2ca::halo {
namespace {

/// Looks up the per-layer list vector for (set, neighbour) or nullptr.
const std::vector<LIdxVec>* find_lists(
    const std::map<rank_t, std::vector<LIdxVec>>& table, rank_t q) {
  const auto it = table.find(q);
  return it == table.end() ? nullptr : &it->second;
}

/// Iterates the (dat, class, layer) sequence of a grouped message in the
/// canonical order shared by sender and receiver.
template <typename Fn>
void for_each_segment(const RankPlan& rp, rank_t q,
                      std::span<const DatSyncSpec> specs, bool exports,
                      Fn&& fn) {
  for (const DatSyncSpec& spec : specs) {
    const NeighborLists& nl =
        rp.lists[static_cast<std::size_t>(spec.set)];
    const std::vector<LIdxVec>* exec =
        find_lists(exports ? nl.exp_exec : nl.imp_exec, q);
    const std::vector<LIdxVec>* nonexec =
        find_lists(exports ? nl.exp_nonexec : nl.imp_nonexec, q);
    for (int k = 1; k <= spec.depth; ++k) {
      if (exec != nullptr &&
          k <= static_cast<int>(exec->size()))
        fn(spec, (*exec)[static_cast<std::size_t>(k - 1)]);
    }
    for (int k = 1; k <= spec.depth; ++k) {
      if (nonexec != nullptr && k <= static_cast<int>(nonexec->size()))
        fn(spec, (*nonexec)[static_cast<std::size_t>(k - 1)]);
    }
  }
}

}  // namespace

void pack_rows(const double* data, int dim, const LIdxVec& idx,
               std::vector<std::byte>* out) {
  const std::size_t row_bytes = static_cast<std::size_t>(dim) * sizeof(double);
  const std::size_t base = out->size();
  out->resize(base + idx.size() * row_bytes);
  std::byte* dst = out->data() + base;
  for (lidx_t i : idx) {
    std::memcpy(dst, data + static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(dim),
                row_bytes);
    dst += row_bytes;
  }
}

std::size_t unpack_rows(double* data, int dim, const LIdxVec& idx,
                        std::span<const std::byte> in, std::size_t offset) {
  const std::size_t row_bytes = static_cast<std::size_t>(dim) * sizeof(double);
  OP2CA_REQUIRE(offset + idx.size() * row_bytes <= in.size(),
                "unpack_rows: payload too short");
  const std::byte* src = in.data() + offset;
  for (lidx_t i : idx) {
    std::memcpy(data + static_cast<std::size_t>(i) *
                           static_cast<std::size_t>(dim),
                src, row_bytes);
    src += row_bytes;
  }
  return offset + idx.size() * row_bytes;
}

std::map<rank_t, std::int64_t> grouped_message_bytes(
    const RankPlan& rp, std::span<const DatSyncSpec> specs) {
  std::map<rank_t, std::int64_t> bytes;
  for (rank_t q : rp.neighbors) {
    std::int64_t total = 0;
    for_each_segment(rp, q, specs, /*exports=*/true,
                     [&](const DatSyncSpec& spec, const LIdxVec& idx) {
                       total += static_cast<std::int64_t>(idx.size()) *
                                spec.dim *
                                static_cast<std::int64_t>(sizeof(double));
                     });
    if (total > 0) bytes[q] = total;
  }
  return bytes;
}

std::vector<std::byte> pack_grouped(const RankPlan& rp, rank_t q,
                                    std::span<const DatSyncSpec> specs) {
  std::vector<std::byte> out;
  for_each_segment(rp, q, specs, /*exports=*/true,
                   [&](const DatSyncSpec& spec, const LIdxVec& idx) {
                     pack_rows(spec.data, spec.dim, idx, &out);
                   });
  return out;
}

void unpack_grouped(const RankPlan& rp, rank_t q,
                    std::span<const DatSyncSpec> specs,
                    std::span<const std::byte> payload) {
  std::size_t offset = 0;
  for_each_segment(rp, q, specs, /*exports=*/false,
                   [&](const DatSyncSpec& spec, const LIdxVec& idx) {
                     offset = unpack_rows(spec.data, spec.dim, idx, payload,
                                          offset);
                   });
  OP2CA_REQUIRE(offset == payload.size(),
                "unpack_grouped: payload size mismatch");
}

}  // namespace op2ca::halo
