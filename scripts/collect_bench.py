#!/usr/bin/env python3
"""Aggregate every BENCH_*.json emitted by the bench binaries into one
results/bench_all.json snapshot.

The bench executables (bench_micro_kernels, bench_calibrate, ...) each
write standalone BENCH_<section>.json files into the directory they run
in. CI runs them in the repo root and then calls this script so the
uploaded artifact — and the checked-in results/bench_all.json — carries
one self-describing document instead of a loose file pile.

Usage:
    python3 scripts/collect_bench.py [--dir DIR] [--out FILE]
                                     [--expect a,b,...]

DIR defaults to the current directory, OUT to results/bench_all.json
under DIR. --expect names the sections that MUST be present (default:
the bench_micro_kernels set — hotpath, locality, simd, transport, gpu,
tiling); a missing or unparseable expected file exits non-zero so a CI
run that silently dropped a section fails instead of uploading a
truncated snapshot. Extra BENCH_*.json beyond the expected set (e.g.
BENCH_calibration.json from the MPI leg) are collected too. Exits
non-zero if no BENCH_*.json is found at all.
"""

import argparse
import glob
import json
import os
import sys

# The sections bench_micro_kernels always emits; a run that produced
# fewer than these is a failed run, not a smaller one.
DEFAULT_EXPECT = "hotpath,locality,simd,transport,gpu,tiling"


def collect(src_dir: str, expect: list) -> dict:
    sections = {}
    paths = sorted(glob.glob(os.path.join(src_dir, "BENCH_*.json")))
    found = {os.path.basename(p)[len("BENCH_"):-len(".json")]: p
             for p in paths}
    missing = [name for name in expect if name not in found]
    if missing:
        sys.exit("FAIL: expected BENCH_{%s}.json missing from %s"
                 % (",".join(missing), src_dir or "."))
    for path in paths:
        name = os.path.basename(path)
        # BENCH_gpu.json -> "gpu", BENCH_hotpath.json -> "hotpath", ...
        key = name[len("BENCH_"):-len(".json")]
        with open(path) as f:
            try:
                sections[key] = json.load(f)
            except json.JSONDecodeError as e:
                sys.exit(f"FAIL: {name} is not valid JSON: {e}")
    if not sections:
        sys.exit(f"FAIL: no BENCH_*.json found in {src_dir or '.'}")
    return {"sections": sections, "files": [os.path.basename(p) for p in paths]}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dir", default=".", help="directory holding BENCH_*.json")
    ap.add_argument("--out", default=None,
                    help="output path (default: <dir>/results/bench_all.json)")
    ap.add_argument("--expect", default=DEFAULT_EXPECT,
                    help="comma-separated section names that must be present"
                         " (empty string to accept whatever is found)")
    args = ap.parse_args()

    expect = [s for s in args.expect.split(",") if s]
    out = args.out or os.path.join(args.dir, "results", "bench_all.json")
    merged = collect(args.dir, expect)
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"collected {len(merged['files'])} file(s) -> {out}: "
          + ", ".join(merged["files"]))


if __name__ == "__main__":
    main()
