#!/usr/bin/env python3
"""Aggregate every BENCH_*.json emitted by the bench binaries into one
results/bench_all.json snapshot.

The bench executables (bench_micro_kernels, bench_calibrate, ...) each
write standalone BENCH_<section>.json files into the directory they run
in. CI runs them in the repo root and then calls this script so the
uploaded artifact — and the checked-in results/bench_all.json — carries
one self-describing document instead of a loose file pile.

Usage:
    python3 scripts/collect_bench.py [--dir DIR] [--out FILE]

DIR defaults to the current directory, OUT to results/bench_all.json
under DIR. Exits non-zero if no BENCH_*.json is found (a CI run that
produced nothing is a failed run) or if any file is unparseable.
"""

import argparse
import glob
import json
import os
import sys


def collect(src_dir: str) -> dict:
    sections = {}
    paths = sorted(glob.glob(os.path.join(src_dir, "BENCH_*.json")))
    for path in paths:
        name = os.path.basename(path)
        # BENCH_gpu.json -> "gpu", BENCH_hotpath.json -> "hotpath", ...
        key = name[len("BENCH_"):-len(".json")]
        with open(path) as f:
            try:
                sections[key] = json.load(f)
            except json.JSONDecodeError as e:
                sys.exit(f"FAIL: {name} is not valid JSON: {e}")
    if not sections:
        sys.exit(f"FAIL: no BENCH_*.json found in {src_dir or '.'}")
    return {"sections": sections, "files": [os.path.basename(p) for p in paths]}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dir", default=".", help="directory holding BENCH_*.json")
    ap.add_argument("--out", default=None,
                    help="output path (default: <dir>/results/bench_all.json)")
    args = ap.parse_args()

    out = args.out or os.path.join(args.dir, "results", "bench_all.json")
    merged = collect(args.dir)
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"collected {len(merged['files'])} file(s) -> {out}: "
          + ", ".join(merged["files"]))


if __name__ == "__main__":
    main()
